#include <gtest/gtest.h>

#include "plan/join_graph.h"
#include "plan/physical_plan.h"
#include "plan/query_spec.h"
#include "plan/rel_set.h"

namespace reopt::plan {
namespace {

// ---- RelSet -----------------------------------------------------------------

TEST(RelSetTest, BasicOps) {
  RelSet s = RelSet::Single(2).With(5);
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.count(), 2);
  EXPECT_EQ(s.Lowest(), 2);
  EXPECT_EQ(s.Without(2), RelSet::Single(5));
}

TEST(RelSetTest, SetAlgebra) {
  RelSet a(0b1010);
  RelSet b(0b0110);
  EXPECT_EQ(a.Union(b).bits(), 0b1110u);
  EXPECT_EQ(a.Intersect(b).bits(), 0b0010u);
  EXPECT_EQ(a.Minus(b).bits(), 0b1000u);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(a.ContainsAll(RelSet(0b1000)));
  EXPECT_FALSE(a.ContainsAll(b));
}

TEST(RelSetTest, FirstN) {
  EXPECT_EQ(RelSet::FirstN(3).bits(), 0b111u);
  EXPECT_EQ(RelSet::FirstN(0).bits(), 0u);
  EXPECT_EQ(RelSet::FirstN(17).count(), 17);
}

TEST(RelSetTest, MemberIteration) {
  RelSet s(0b101001);
  std::vector<int> members;
  for (int r : s.Members()) members.push_back(r);
  EXPECT_EQ(members, (std::vector<int>{0, 3, 5}));
}

TEST(RelSetTest, ToString) {
  EXPECT_EQ(RelSet(0b101).ToString(), "{0,2}");
  EXPECT_EQ(RelSet().ToString(), "{}");
}

// ---- QuerySpec helpers ----------------------------------------------------

// A chain query: r0 - r1 - r2 - r3.
QuerySpec ChainQuery(int n) {
  QuerySpec q;
  q.name = "chain";
  for (int i = 0; i < n; ++i) {
    q.relations.push_back(RelationRef{"t" + std::to_string(i),
                                      "a" + std::to_string(i)});
  }
  for (int i = 0; i + 1 < n; ++i) {
    JoinEdge e;
    e.left = ColumnRef{i, 0, ""};
    e.right = ColumnRef{i + 1, 0, ""};
    q.joins.push_back(e);
  }
  return q;
}

// A star query: r0 in the middle, r1..r{n-1} as satellites.
QuerySpec StarQuery(int n) {
  QuerySpec q;
  q.name = "star";
  for (int i = 0; i < n; ++i) {
    q.relations.push_back(RelationRef{"t" + std::to_string(i),
                                      "a" + std::to_string(i)});
  }
  for (int i = 1; i < n; ++i) {
    JoinEdge e;
    e.left = ColumnRef{0, 0, ""};
    e.right = ColumnRef{i, 0, ""};
    q.joins.push_back(e);
  }
  return q;
}

TEST(QuerySpecTest, FiltersFor) {
  QuerySpec q = ChainQuery(3);
  ScanPredicate p;
  p.column = ColumnRef{1, 0, ""};
  q.filters.push_back(p);
  EXPECT_EQ(q.FiltersFor(1).size(), 1u);
  EXPECT_TRUE(q.FiltersFor(0).empty());
}

TEST(QuerySpecTest, JoinsWithinAndBetween) {
  QuerySpec q = ChainQuery(4);
  EXPECT_EQ(q.JoinsWithin(RelSet(0b0011)).size(), 1u);
  EXPECT_EQ(q.JoinsWithin(RelSet(0b1111)).size(), 3u);
  EXPECT_EQ(q.JoinsWithin(RelSet(0b0101)).size(), 0u);
  EXPECT_EQ(q.JoinsBetween(RelSet(0b0011), RelSet(0b0100)).size(), 1u);
  EXPECT_EQ(q.JoinsBetween(RelSet(0b0001), RelSet(0b0100)).size(), 0u);
}

TEST(QuerySpecTest, ToStringMentionsTablesAndPredicates) {
  QuerySpec q = ChainQuery(2);
  OutputExpr out;
  out.column = ColumnRef{0, 0, ""};
  out.label = "m";
  q.outputs.push_back(out);
  std::string s = q.ToString();
  EXPECT_NE(s.find("t0 AS a0"), std::string::npos);
  EXPECT_NE(s.find("MIN("), std::string::npos);
}

// ---- JoinGraph --------------------------------------------------------------

TEST(JoinGraphTest, NeighborsOnChain) {
  QuerySpec q = ChainQuery(4);
  JoinGraph g(q);
  EXPECT_EQ(g.Neighbors(0), RelSet::Single(1));
  EXPECT_EQ(g.Neighbors(1), RelSet::Single(0).With(2));
  EXPECT_EQ(g.NeighborsOf(RelSet(0b0110)), RelSet::Single(0).With(3));
}

TEST(JoinGraphTest, ConnectivityOnChain) {
  QuerySpec q = ChainQuery(4);
  JoinGraph g(q);
  EXPECT_TRUE(g.IsConnected(RelSet(0b1111)));
  EXPECT_TRUE(g.IsConnected(RelSet(0b0110)));
  EXPECT_FALSE(g.IsConnected(RelSet(0b1001)));
  EXPECT_FALSE(g.IsConnected(RelSet(0b0101)));
  EXPECT_TRUE(g.IsConnected(RelSet::Single(2)));
  EXPECT_FALSE(g.IsConnected(RelSet()));
}

TEST(JoinGraphTest, ConnectedSubsetCountChain) {
  // A chain of n nodes has n*(n+1)/2 connected subsets (contiguous runs).
  for (int n : {2, 3, 5, 8}) {
    QuerySpec q = ChainQuery(n);
    JoinGraph g(q);
    EXPECT_EQ(static_cast<int>(g.ConnectedSubsets().size()),
              n * (n + 1) / 2)
        << "chain of " << n;
  }
}

TEST(JoinGraphTest, ConnectedSubsetCountStar) {
  // A star of n nodes: n singletons-1... all subsets containing the hub
  // (2^(n-1)) plus the n-1 satellite singletons, plus the hub singleton is
  // already counted: total = 2^(n-1) + (n-1).
  for (int n : {3, 4, 6}) {
    QuerySpec q = StarQuery(n);
    JoinGraph g(q);
    EXPECT_EQ(static_cast<int>(g.ConnectedSubsets().size()),
              (1 << (n - 1)) + (n - 1))
        << "star of " << n;
  }
}

TEST(JoinGraphTest, ConnectedPairsCoverChain) {
  // Chain of 3: partitions {0|12, 01|2, 0|1 (of {0,1}), 1|2 (of {1,2})}.
  QuerySpec q = ChainQuery(3);
  JoinGraph g(q);
  const auto& pairs = g.ConnectedPairs();
  EXPECT_EQ(pairs.size(), 4u);
  for (const CsgCmpPair& p : pairs) {
    EXPECT_FALSE(p.left.Intersects(p.right));
    EXPECT_TRUE(g.IsConnected(p.left));
    EXPECT_TRUE(g.IsConnected(p.right));
    EXPECT_TRUE(g.NeighborsOf(p.left).Intersects(p.right));
  }
}

TEST(JoinGraphTest, PairsAreUnordered) {
  QuerySpec q = ChainQuery(4);
  JoinGraph g(q);
  for (const CsgCmpPair& p : g.ConnectedPairs()) {
    // The left side always contains the lowest relation of the union.
    EXPECT_TRUE(p.left.Contains(p.left.Union(p.right).Lowest()));
  }
}

// ---- Physical plan -----------------------------------------------------------

TEST(PhysicalPlanTest, CloneIsDeep) {
  PlanNode root;
  root.op = PlanOp::kHashJoin;
  root.rels = RelSet(0b11);
  root.est_rows = 5;
  root.left = std::make_unique<PlanNode>();
  root.left->op = PlanOp::kSeqScan;
  root.left->scan_rel = 0;
  root.right = std::make_unique<PlanNode>();
  root.right->op = PlanOp::kSeqScan;
  root.right->scan_rel = 1;
  root.actual_rows = 77;

  PlanNodePtr copy = ClonePlan(root);
  EXPECT_EQ(copy->op, PlanOp::kHashJoin);
  EXPECT_EQ(copy->est_rows, 5);
  ASSERT_NE(copy->left, nullptr);
  EXPECT_NE(copy->left.get(), root.left.get());
  EXPECT_EQ(copy->left->scan_rel, 0);
}

TEST(PhysicalPlanTest, PostOrderVisitsChildrenFirst) {
  PlanNode root;
  root.op = PlanOp::kHashJoin;
  root.left = std::make_unique<PlanNode>();
  root.left->op = PlanOp::kSeqScan;
  root.right = std::make_unique<PlanNode>();
  root.right->op = PlanOp::kSeqScan;
  std::vector<PlanOp> order;
  root.PostOrder([&](PlanNode* n) { order.push_back(n->op); });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), PlanOp::kHashJoin);
}

TEST(PhysicalPlanTest, SubtreeChargedCostSums) {
  PlanNode root;
  root.op = PlanOp::kHashJoin;
  root.charged_cost = 10;
  root.left = std::make_unique<PlanNode>();
  root.left->charged_cost = 3;
  root.left->op = PlanOp::kSeqScan;
  root.right = std::make_unique<PlanNode>();
  root.right->charged_cost = 4;
  root.right->op = PlanOp::kSeqScan;
  EXPECT_DOUBLE_EQ(root.SubtreeChargedCost(), 17.0);
}

TEST(PhysicalPlanTest, PlanOpNames) {
  EXPECT_STREQ(PlanOpName(PlanOp::kSeqScan), "SeqScan");
  EXPECT_STREQ(PlanOpName(PlanOp::kIndexNestedLoopJoin), "IndexNestedLoop");
  EXPECT_STREQ(PlanOpName(PlanOp::kTempWrite), "TempWrite");
}

}  // namespace
}  // namespace reopt::plan
