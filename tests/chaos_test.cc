// The fault-injection (chaos) suite: every fail point registered in src/
// (common/fail_point.h) is armed against the 113-query JOB-like workload
// and must produce a clean non-OK Status — never a crash or CHECK — with
// nothing leaked: the temp-table catalog is empty and the statistics
// catalog is byte-identical to its baseline after every aborted query, and
// a fault-free retry of the same query session returns results
// byte-identical to the fault-free reference.
//
// The service-level cases then prove the lifecycle governance end to end:
// transient worker faults retry to byte-identical replies, submission
// faults shed cleanly, an expired deadline frees its worker at dequeue
// time while sibling replies stay byte-identical, and cancellation /
// degradation are accounted in ServerStats.
//
// CI runs this suite under ASan/UBSan via the `chaos` ctest label; the
// repo lint (tools/lint.py, fail-points rule) checks that every fail point
// name registered in src/ appears here.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fail_point.h"
#include "common/status.h"
#include "optimizer/knowledge_base.h"
#include "reopt/query_runner.h"
#include "service/sql_server.h"
#include "sql/engine.h"
#include "tests/test_util.h"
#include "workload/job_like.h"

namespace reopt {
namespace {

using testing::SmallImdb;

namespace fp = common::failpoint;

reoptimizer::ReoptOptions ReoptOn() {
  reoptimizer::ReoptOptions r;
  r.enabled = true;
  r.qerror_threshold = 32.0;
  return r;
}

// One query's fault-free reference result.
struct Expected {
  std::vector<common::Value> aggregates;
  int64_t raw_rows = 0;
  double plan_cost_units = 0.0;
  double exec_cost_units = 0.0;
  int num_materializations = 0;
};

// The workload, its per-query QuerySessions (reused across fault and retry
// runs, the intended session usage), the fault-free reference results, and
// the baseline statistics-catalog contents — computed once per binary.
struct ChaosBench {
  std::unique_ptr<workload::JobLikeWorkload> workload;
  std::vector<std::string> sql;
  std::vector<std::unique_ptr<reoptimizer::QuerySession>> sessions;
  std::vector<Expected> expected;
  std::vector<std::string> baseline_stats;
};

const ChaosBench& SharedChaosBench() {
  static ChaosBench* bench = [] {
    auto* wb = new ChaosBench();
    imdb::ImdbDatabase* db = SmallImdb();
    wb->workload = workload::BuildJobLikeWorkload(db->catalog);
    reoptimizer::QueryRunner runner(&db->catalog, &db->stats,
                                    optimizer::CostParams{});
    runner.set_temp_namespace("chaos_ref");
    for (const auto& q : wb->workload->queries) {
      wb->sql.push_back(sql::RenderSql(*q));
      auto session = reoptimizer::QuerySession::Create(q.get(), &db->catalog,
                                                       &db->stats);
      EXPECT_TRUE(session.ok()) << session.status().ToString();
      wb->sessions.push_back(std::move(session.value()));
      auto run = runner.Run(wb->sessions.back().get(),
                            reoptimizer::ModelSpec::Estimator(), ReoptOn());
      EXPECT_TRUE(run.ok()) << q->name << ": " << run.status().ToString();
      wb->expected.push_back(Expected{run->aggregates, run->raw_rows,
                                      run->plan_cost_units,
                                      run->exec_cost_units,
                                      run->num_materializations});
    }
    wb->baseline_stats = db->stats.Names();
    return wb;
  }();
  return *bench;
}

void ExpectRunMatches(const reoptimizer::RunResult& run, const Expected& want,
                      const std::string& name) {
  EXPECT_EQ(run.aggregates, want.aggregates) << name;
  EXPECT_EQ(run.raw_rows, want.raw_rows) << name;
  EXPECT_EQ(run.plan_cost_units, want.plan_cost_units) << name;
  EXPECT_EQ(run.exec_cost_units, want.exec_cost_units) << name;
  EXPECT_EQ(run.num_materializations, want.num_materializations) << name;
}

void ExpectReplyMatches(const service::QueryReply& reply,
                        const Expected& want, const std::string& name) {
  ASSERT_TRUE(reply.status.ok()) << name << ": " << reply.status.ToString();
  EXPECT_EQ(reply.outcome.aggregates, want.aggregates) << name;
  EXPECT_EQ(reply.outcome.raw_rows, want.raw_rows) << name;
  EXPECT_EQ(reply.outcome.plan_cost_units, want.plan_cost_units) << name;
  EXPECT_EQ(reply.outcome.exec_cost_units, want.exec_cost_units) << name;
  EXPECT_EQ(reply.outcome.num_materializations, want.num_materializations)
      << name;
}

// Arm/disarm hygiene: each test starts and ends with an empty registry so
// a failing test cannot poison its siblings.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::DisarmAll(); }
  void TearDown() override { fp::DisarmAll(); }
};

// ---- Engine-level fail-point sweep ------------------------------------------

// Every fail point planted below the service layer. Armed `nth:1`, each
// must fail the query with a clean Status on every workload query that
// reaches it, leave no temp tables or statistics behind, and a fault-free
// rerun of the same session must be byte-identical to the reference.
class EngineFaultSweep : public ChaosTest,
                         public ::testing::WithParamInterface<const char*> {};

TEST_P(EngineFaultSweep, FaultFailsCleanlyAndRetryIsByteIdentical) {
  const char* point = GetParam();
  const ChaosBench& wb = SharedChaosBench();
  imdb::ImdbDatabase* db = SmallImdb();

  // The knowledge base makes the kb.commit point reachable; under the
  // estimator model a warming base never changes plans, so the reference
  // stays valid for every point.
  optimizer::CardinalityKnowledgeBase kb;
  reoptimizer::QueryRunner runner(&db->catalog, &db->stats,
                                  optimizer::CostParams{});
  runner.set_temp_namespace("chaos");
  runner.set_knowledge_base(&kb);

  int fired = 0;
  for (size_t qi = 0; qi < wb.sessions.size(); ++qi) {
    const std::string& name = wb.workload->queries[qi]->name;
    ASSERT_TRUE(fp::Arm(point, "nth:1").ok());
    auto faulted = runner.Run(wb.sessions[qi].get(),
                              reoptimizer::ModelSpec::Estimator(), ReoptOn());
    const bool triggered = fp::Triggers(point) > 0;
    fp::Disarm(point);

    if (triggered) {
      ++fired;
      // A clean error, never a crash — and nothing left behind.
      EXPECT_FALSE(faulted.ok()) << point << " @ " << name;
      EXPECT_TRUE(db->catalog.TableNames(/*temp_only=*/true).empty())
          << point << " @ " << name << " leaked a temp table";
      EXPECT_EQ(db->stats.Names(), wb.baseline_stats)
          << point << " @ " << name << " leaked statistics";
      // Fault-free retry of the same session: byte-identical.
      auto retry = runner.Run(wb.sessions[qi].get(),
                              reoptimizer::ModelSpec::Estimator(), ReoptOn());
      ASSERT_TRUE(retry.ok()) << point << " @ " << name << ": "
                              << retry.status().ToString();
      ExpectRunMatches(*retry, wb.expected[qi], name);
    } else {
      // The query never reached this point (e.g. it needed no
      // materialization); its untouched run must match the reference.
      ASSERT_TRUE(faulted.ok()) << point << " @ " << name << ": "
                                << faulted.status().ToString();
      ExpectRunMatches(*faulted, wb.expected[qi], name);
    }
  }
  // The sweep is not vacuous: each point fires for at least one query.
  EXPECT_GT(fired, 0) << point << " never triggered across the workload";
}

INSTANTIATE_TEST_SUITE_P(AllEnginePoints, EngineFaultSweep,
                         ::testing::Values("reopt.plan", "reopt.replan",
                                           "reopt.materialize", "kb.commit",
                                           "exec.temp_write", "exec.analyze"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

// ---- Service-level fault injection ------------------------------------------

// A seeded probabilistic fault on worker execution: with one worker (fixed
// evaluation order, so the seeded draw sequence is deterministic) and
// bounded retry, every statement must still complete with a byte-identical
// reply, and the retry counter must show the faults were absorbed.
TEST_F(ChaosTest, WorkerExecFaultsRetryToByteIdenticalReplies) {
  const ChaosBench& wb = SharedChaosBench();
  imdb::ImdbDatabase* db = SmallImdb();

  ASSERT_TRUE(fp::Arm("service.worker_exec", "prob:0.25:42").ok());
  service::ServerOptions options;
  options.session_workers = 1;
  options.reopt = ReoptOn();
  options.max_retries = 8;
  options.retry_backoff_seconds = 1e-6;  // keep the test fast
  service::SqlServer server(&db->catalog, &db->stats, options);
  service::SqlSession* session = server.OpenSession();

  std::vector<service::TicketPtr> tickets;
  for (const std::string& sql : wb.sql) {
    tickets.push_back(session->Submit(sql));
  }
  for (size_t qi = 0; qi < tickets.size(); ++qi) {
    ExpectReplyMatches(tickets[qi]->Wait(), wb.expected[qi],
                       wb.workload->queries[qi]->name);
  }
  server.Shutdown();
  const int64_t injected = fp::Triggers("service.worker_exec");
  fp::DisarmAll();

  service::ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.completed, static_cast<int64_t>(wb.sql.size()));
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GT(stats.retried, 0);
  EXPECT_GT(injected, 0);
  EXPECT_TRUE(db->catalog.TableNames(/*temp_only=*/true).empty());
}

// A fault on the submission path: the first submission is shed with a
// clean Unavailable reply (counted as rejected, never executed) and the
// resubmission succeeds byte-identically.
TEST_F(ChaosTest, QueuePushFaultShedsFirstSubmissionCleanly) {
  const ChaosBench& wb = SharedChaosBench();
  imdb::ImdbDatabase* db = SmallImdb();

  ASSERT_TRUE(fp::Arm("service.queue_push", "nth:1").ok());
  service::ServerOptions options;
  options.session_workers = 1;
  options.reopt = ReoptOn();
  service::SqlServer server(&db->catalog, &db->stats, options);
  service::SqlSession* session = server.OpenSession();

  // Keep each ticket alive past Wait(): the reply reference lives inside it.
  const service::TicketPtr shed_ticket = session->Submit(wb.sql[0]);
  const service::QueryReply& shed = shed_ticket->Wait();
  EXPECT_EQ(shed.status.code(), common::StatusCode::kUnavailable)
      << shed.status.ToString();
  EXPECT_EQ(shed.worker, -1);  // never dispatched

  const service::TicketPtr retry_ticket = session->Submit(wb.sql[0]);
  const service::QueryReply& retry = retry_ticket->Wait();
  ExpectReplyMatches(retry, wb.expected[0], wb.workload->queries[0]->name);
  server.Shutdown();

  service::ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 1);
}

// ---- Deadlines and cancellation through the service -------------------------

// A statement with an already-expired per-Submit deadline fails at dequeue
// time with DeadlineExceeded — freeing its worker without charging any
// execution — while sibling statements' replies stay byte-identical.
TEST_F(ChaosTest, ExpiredDeadlineFreesWorkerAndSparesSiblings) {
  const ChaosBench& wb = SharedChaosBench();
  imdb::ImdbDatabase* db = SmallImdb();

  service::ServerOptions options;
  options.session_workers = 2;
  options.reopt = ReoptOn();
  service::SqlServer server(&db->catalog, &db->stats, options);
  service::SqlSession* session = server.OpenSession();

  service::TicketPtr before = session->Submit(wb.sql[0]);
  service::TicketPtr doomed = session->Submit(wb.sql[1], /*timeout=*/1e-9);
  service::TicketPtr after = session->Submit(wb.sql[2]);

  EXPECT_EQ(doomed->Wait().status.code(),
            common::StatusCode::kDeadlineExceeded)
      << doomed->Wait().status.ToString();
  ExpectReplyMatches(before->Wait(), wb.expected[0],
                     wb.workload->queries[0]->name);
  ExpectReplyMatches(after->Wait(), wb.expected[2],
                     wb.workload->queries[2]->name);
  server.Shutdown();

  service::ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.timed_out, 1);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_TRUE(db->catalog.TableNames(/*temp_only=*/true).empty());
}

// A server-wide default timeout applies to every Submit that does not
// override it, and an explicit per-Submit timeout of 0 opts back out.
TEST_F(ChaosTest, DefaultTimeoutAppliesUnlessOverridden) {
  const ChaosBench& wb = SharedChaosBench();
  imdb::ImdbDatabase* db = SmallImdb();

  service::ServerOptions options;
  options.session_workers = 2;
  options.queue_capacity = 256;  // admission never sheds in this test
  options.reopt = ReoptOn();
  options.default_timeout_seconds = 1e-9;
  service::SqlServer server(&db->catalog, &db->stats, options);
  service::SqlSession* session = server.OpenSession();

  std::vector<service::TicketPtr> tickets;
  for (const std::string& sql : wb.sql) {
    tickets.push_back(session->Submit(sql));
  }
  for (const service::TicketPtr& t : tickets) {
    EXPECT_EQ(t->Wait().status.code(),
              common::StatusCode::kDeadlineExceeded)
        << t->Wait().status.ToString();
  }
  // Opting out per Submit still works on the same server. The ticket must
  // outlive the reply reference Wait() hands back.
  const service::TicketPtr ok_ticket =
      session->Submit(wb.sql[0], /*timeout=*/0.0);
  const service::QueryReply& ok = ok_ticket->Wait();
  ExpectReplyMatches(ok, wb.expected[0], wb.workload->queries[0]->name);
  server.Shutdown();

  service::ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.timed_out, static_cast<int64_t>(wb.sql.size()));
  EXPECT_EQ(stats.completed, 1);
  EXPECT_TRUE(db->catalog.TableNames(/*temp_only=*/true).empty());
}

// Ticket::Cancel() on in-flight statements: every reply is either complete
// and byte-identical or cleanly Cancelled, the ServerStats accounting
// matches the observed replies exactly, and nothing leaks.
TEST_F(ChaosTest, CancelledTicketsSettleCleanlyAndAreAccounted) {
  const ChaosBench& wb = SharedChaosBench();
  imdb::ImdbDatabase* db = SmallImdb();

  service::ServerOptions options;
  options.session_workers = 1;
  options.queue_capacity = 256;  // all statements queue immediately
  options.reopt = ReoptOn();
  service::SqlServer server(&db->catalog, &db->stats, options);
  service::SqlSession* session = server.OpenSession();

  std::vector<service::TicketPtr> tickets;
  for (const std::string& sql : wb.sql) {
    tickets.push_back(session->Submit(sql));
  }
  for (const service::TicketPtr& t : tickets) t->Cancel();

  int64_t completed = 0;
  int64_t cancelled = 0;
  for (size_t qi = 0; qi < tickets.size(); ++qi) {
    const service::QueryReply& reply = tickets[qi]->Wait();
    if (reply.status.ok()) {
      ++completed;
      ExpectReplyMatches(reply, wb.expected[qi],
                         wb.workload->queries[qi]->name);
    } else {
      ++cancelled;
      EXPECT_EQ(reply.status.code(), common::StatusCode::kCancelled)
          << reply.status.ToString();
    }
  }
  server.Shutdown();

  // The single worker cannot outrun the submit+cancel loop across all 113
  // statements, so some cancellations always land.
  EXPECT_GT(cancelled, 0);
  service::ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.failed, cancelled);
  EXPECT_TRUE(db->catalog.TableNames(/*temp_only=*/true).empty());
}

// A materialization budget degrades gracefully through the service: the
// reply is still OK with exact results, flagged degraded and counted.
TEST_F(ChaosTest, MaterializationBudgetDegradesGracefullyThroughService) {
  const ChaosBench& wb = SharedChaosBench();
  imdb::ImdbDatabase* db = SmallImdb();

  // A query the re-optimizer revisits at least twice: the budget below
  // admits the first materialization and suppresses the rest.
  size_t target = wb.expected.size();
  for (size_t qi = 0; qi < wb.expected.size(); ++qi) {
    if (wb.expected[qi].num_materializations >= 2) {
      target = qi;
      break;
    }
  }
  if (target == wb.expected.size()) {
    GTEST_SKIP() << "no workload query materializes twice at this scale";
  }

  service::ServerOptions options;
  options.session_workers = 1;
  options.reopt = ReoptOn();
  options.reopt.max_materialized_rows = 1;
  service::SqlServer server(&db->catalog, &db->stats, options);

  const service::TicketPtr ticket =
      server.OpenSession()->Submit(wb.sql[target]);
  const service::QueryReply& reply = ticket->Wait();
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_TRUE(reply.outcome.degraded);
  // Degradation changes the plan, never the answer.
  EXPECT_EQ(reply.outcome.aggregates, wb.expected[target].aggregates);
  EXPECT_EQ(reply.outcome.raw_rows, wb.expected[target].raw_rows);
  EXPECT_LT(reply.outcome.num_materializations,
            wb.expected[target].num_materializations);
  server.Shutdown();

  service::ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.degraded, 1);
}

}  // namespace
}  // namespace reopt
