// Edge-case coverage for the vectorized kernels: empty tables, all-rows-pass
// and zero-rows-pass selections, single-row build sides, NULL keys and NULL
// comparisons, selection-vector batch boundaries (kKernelBatchSize - 1,
// kKernelBatchSize, kKernelBatchSize + 1), and the typed fast-path /
// generic-fallback seams (mixed-type literals). Every case is asserted both
// against hand-computed expectations and against the retained scalar
// reference kernel, element for element.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/kernel.h"
#include "exec/kernel_reference.h"
#include "storage/catalog.h"
#include "tests/test_util.h"

namespace reopt::exec {
namespace {

using common::Value;

/// A private catalog with deterministic tables sized around the batch size.
class KernelEdgeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new storage::Catalog();
    // Tables "n<size>": id = 0..n-1, parity = id % 2, val = id / 2.0,
    // name = "row<id>", nullable = id (NULL every 7th row).
    for (int64_t n : {static_cast<int64_t>(0), static_cast<int64_t>(1),
                      static_cast<int64_t>(kKernelBatchSize) - 1,
                      static_cast<int64_t>(kKernelBatchSize),
                      static_cast<int64_t>(kKernelBatchSize) + 1}) {
      storage::Schema schema({{"id", common::DataType::kInt64},
                              {"parity", common::DataType::kInt64},
                              {"val", common::DataType::kDouble},
                              {"name", common::DataType::kString},
                              {"nullable", common::DataType::kInt64}});
      auto created = catalog_->CreateTable("n" + std::to_string(n),
                                           std::move(schema));
      ASSERT_TRUE(created.ok());
      storage::Table* t = created.value();
      for (int64_t i = 0; i < n; ++i) {
        t->AppendRow({Value::Int(i), Value::Int(i % 2),
                      Value::Real(static_cast<double>(i) / 2.0),
                      Value::Str("row" + std::to_string(i)),
                      i % 7 == 0 ? Value::Null_() : Value::Int(i)});
      }
    }
  }

  static const storage::Table& TableOfSize(int64_t n) {
    const storage::Table* t = catalog_->FindTable("n" + std::to_string(n));
    EXPECT_NE(t, nullptr);
    return *t;
  }

  static plan::ScanPredicate Pred(common::ColumnIdx col,
                                  plan::ScanPredicate::Kind kind,
                                  plan::CompareOp op, Value v,
                                  Value v2 = Value::Null_()) {
    plan::ScanPredicate p;
    p.column = plan::ColumnRef{0, col, ""};
    p.kind = kind;
    p.op = op;
    p.value = std::move(v);
    p.value2 = std::move(v2);
    return p;
  }

  /// Vectorized and reference FilterScan must agree element for element;
  /// returns the (shared) result.
  static std::vector<common::RowIdx> BothScans(
      const storage::Table& table,
      const std::vector<const plan::ScanPredicate*>& filters) {
    std::vector<common::RowIdx> vec = FilterScan(table, filters);
    std::vector<common::RowIdx> ref = reference::FilterScan(table, filters);
    EXPECT_EQ(vec, ref);
    return vec;
  }

  static storage::Catalog* catalog_;
};

storage::Catalog* KernelEdgeTest::catalog_ = nullptr;

// ---- FilterScan ------------------------------------------------------------

TEST_F(KernelEdgeTest, EmptyTableYieldsNoRows) {
  const storage::Table& empty = TableOfSize(0);
  EXPECT_TRUE(BothScans(empty, {}).empty());
  plan::ScanPredicate all = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                 plan::CompareOp::kGe, Value::Int(0));
  EXPECT_TRUE(BothScans(empty, {&all}).empty());
}

TEST_F(KernelEdgeTest, AllRowsPassAndZeroRowsPass) {
  for (int64_t n : {static_cast<int64_t>(1),
                    static_cast<int64_t>(kKernelBatchSize),
                    static_cast<int64_t>(kKernelBatchSize) + 1}) {
    const storage::Table& t = TableOfSize(n);
    plan::ScanPredicate all_pass = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                        plan::CompareOp::kGe, Value::Int(0));
    plan::ScanPredicate none_pass = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                         plan::CompareOp::kLt, Value::Int(0));
    EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&all_pass}).size()), n);
    EXPECT_TRUE(BothScans(t, {&none_pass}).empty());
    // Conjunction short-circuit: all-pass then none-pass.
    EXPECT_TRUE(BothScans(t, {&all_pass, &none_pass}).empty());
  }
}

TEST_F(KernelEdgeTest, BatchBoundarySizes) {
  for (int64_t n : {static_cast<int64_t>(kKernelBatchSize) - 1,
                    static_cast<int64_t>(kKernelBatchSize),
                    static_cast<int64_t>(kKernelBatchSize) + 1}) {
    SCOPED_TRACE(n);
    const storage::Table& t = TableOfSize(n);
    plan::ScanPredicate even = Pred(1, plan::ScanPredicate::Kind::kCompare,
                                    plan::CompareOp::kEq, Value::Int(0));
    EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&even}).size()), (n + 1) / 2);
    // Only the very last row — crosses the final (partial) batch.
    plan::ScanPredicate last = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                    plan::CompareOp::kEq, Value::Int(n - 1));
    std::vector<common::RowIdx> rows = BothScans(t, {&last});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], n - 1);
    // No predicate: identity selection at every boundary size.
    EXPECT_EQ(static_cast<int64_t>(BothScans(t, {}).size()), n);
  }
}

TEST_F(KernelEdgeTest, NullSemanticsAcrossKinds) {
  const storage::Table& t = TableOfSize(kKernelBatchSize + 1);
  int64_t n = t.num_rows();
  int64_t nulls = (n + 6) / 7;  // rows 0, 7, 14, ...
  plan::ScanPredicate is_null =
      Pred(4, plan::ScanPredicate::Kind::kIsNull, plan::CompareOp::kEq,
           Value::Null_());
  plan::ScanPredicate is_not_null =
      Pred(4, plan::ScanPredicate::Kind::kIsNotNull, plan::CompareOp::kEq,
           Value::Null_());
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&is_null}).size()), nulls);
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&is_not_null}).size()),
            n - nulls);
  // NULL fails every comparison: >= 0 matches only the non-null rows.
  plan::ScanPredicate ge0 = Pred(4, plan::ScanPredicate::Kind::kCompare,
                                 plan::CompareOp::kGe, Value::Int(0));
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&ge0}).size()), n - nulls);
  // IS NULL on a column with no validity bitmap (id is never null).
  plan::ScanPredicate id_null =
      Pred(0, plan::ScanPredicate::Kind::kIsNull, plan::CompareOp::kEq,
           Value::Null_());
  EXPECT_TRUE(BothScans(t, {&id_null}).empty());
}

TEST_F(KernelEdgeTest, TypedFastPathAndGenericFallbackAgree) {
  const storage::Table& t = TableOfSize(kKernelBatchSize);
  // Double literal against the INT64 id column (coerced comparison).
  plan::ScanPredicate dbl = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                 plan::CompareOp::kLt, Value::Real(10.5));
  EXPECT_EQ(BothScans(t, {&dbl}).size(), 11u);
  // NULL literal: no non-null value compares equal / less.
  plan::ScanPredicate null_eq = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                     plan::CompareOp::kEq, Value::Null_());
  EXPECT_TRUE(BothScans(t, {&null_eq}).empty());
  plan::ScanPredicate null_gt = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                     plan::CompareOp::kGt, Value::Null_());
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&null_gt}).size()),
            t.num_rows());
  // Mixed-type IN list (int column, int + double candidates).
  plan::ScanPredicate mixed_in;
  mixed_in.column = plan::ColumnRef{0, 0, ""};
  mixed_in.kind = plan::ScanPredicate::Kind::kIn;
  mixed_in.in_list = {Value::Int(3), Value::Real(5.0), Value::Null_()};
  EXPECT_EQ(BothScans(t, {&mixed_in}).size(), 2u);
  // BETWEEN over doubles.
  plan::ScanPredicate between_d =
      Pred(2, plan::ScanPredicate::Kind::kBetween, plan::CompareOp::kEq,
           Value::Real(1.0), Value::Real(2.0));
  EXPECT_EQ(BothScans(t, {&between_d}).size(), 3u);  // val in {1.0, 1.5, 2.0}
  // Mixed int/double BETWEEN bounds on an int column: per-bound coercion
  // semantics, preserved via the generic fallback.
  plan::ScanPredicate mixed_between =
      Pred(0, plan::ScanPredicate::Kind::kBetween, plan::CompareOp::kEq,
           Value::Int(5), Value::Real(9.5));
  EXPECT_EQ(BothScans(t, {&mixed_between}).size(), 5u);  // ids 5..9
}

TEST_F(KernelEdgeTest, LikeShapeClassificationMatchesReference) {
  const storage::Table& t = TableOfSize(kKernelBatchSize);
  int64_t n = t.num_rows();
  auto like = [&](const char* pattern, bool negated = false) {
    return Pred(3,
                negated ? plan::ScanPredicate::Kind::kNotLike
                        : plan::ScanPredicate::Kind::kLike,
                plan::CompareOp::kEq, Value::Str(pattern));
  };
  // Every anchored shape plus the generic fallback, against the reference.
  plan::ScanPredicate any = like("%");           // kAny
  plan::ScanPredicate any2 = like("%%");         // kAny
  plan::ScanPredicate empty = like("");          // exact empty: no match
  plan::ScanPredicate exact = like("row7");      // kExact
  plan::ScanPredicate prefix = like("row99%");   // kPrefix
  plan::ScanPredicate suffix = like("%77");      // kSuffix
  plan::ScanPredicate contains = like("%w10%");  // kContains
  plan::ScanPredicate underscore = like("row_");    // general pattern
  plan::ScanPredicate inner = like("row%7");        // general pattern
  plan::ScanPredicate not_prefix = like("row1%", /*negated=*/true);
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&any}).size()), n);
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&any2}).size()), n);
  EXPECT_TRUE(BothScans(t, {&empty}).empty());
  EXPECT_EQ(BothScans(t, {&exact}).size(), 1u);
  EXPECT_EQ(BothScans(t, {&prefix}).size(), 11u);  // row99, row990..row999
  EXPECT_FALSE(BothScans(t, {&suffix}).empty());
  EXPECT_FALSE(BothScans(t, {&contains}).empty());
  EXPECT_EQ(BothScans(t, {&underscore}).size(), 10u);  // row0..row9
  EXPECT_FALSE(BothScans(t, {&inner}).empty());
  BothScans(t, {&not_prefix});
}

TEST_F(KernelEdgeTest, StringBetweenMatchesReferenceExactly) {
  const storage::Table& t = TableOfSize(kKernelBatchSize);
  plan::ScanPredicate between_s =
      Pred(3, plan::ScanPredicate::Kind::kBetween, plan::CompareOp::kEq,
           Value::Str("row10"), Value::Str("row11"));
  // Cross-check only (lexicographic count is non-obvious): vectorized ==
  // reference is the invariant that matters.
  std::vector<common::RowIdx> rows = BothScans(t, {&between_s});
  EXPECT_FALSE(rows.empty());
}

// ---- HashJoinIntermediates -------------------------------------------------

/// Two-relation spec over tables of size `left_n` and `right_n`, joined on
/// the given columns.
struct JoinFixture {
  plan::QuerySpec spec;
  BoundRelations rels;
  plan::JoinEdge edge;

  JoinFixture(const storage::Catalog& catalog, int64_t left_n, int64_t right_n,
              const char* left_col, const char* right_col) {
    spec.relations.push_back(
        plan::RelationRef{"n" + std::to_string(left_n), "l"});
    spec.relations.push_back(
        plan::RelationRef{"n" + std::to_string(right_n), "r"});
    rels = BindRelations(spec, catalog);
    edge.left = plan::ColumnRef{
        0, rels.table(0).schema().FindColumn(left_col), ""};
    edge.right = plan::ColumnRef{
        1, rels.table(1).schema().FindColumn(right_col), ""};
  }

  Intermediate AllRows(int rel) const {
    const storage::Table& t = rels.table(rel);
    std::vector<common::RowIdx> rows(static_cast<size_t>(t.num_rows()));
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<common::RowIdx>(i);
    }
    return Intermediate::FromRows(rel, std::move(rows));
  }
};

/// Vectorized and reference joins must agree on rels and on every column,
/// element for element (same tuples in the same order).
Intermediate BothJoins(const Intermediate& left, const Intermediate& right,
                       const std::vector<const plan::JoinEdge*>& edges,
                       const BoundRelations& rels) {
  Intermediate vec = HashJoinIntermediates(left, right, edges, rels);
  Intermediate ref = reference::HashJoinIntermediates(left, right, edges, rels);
  EXPECT_EQ(vec.rels, ref.rels);
  EXPECT_EQ(vec.columns, ref.columns);
  return vec;
}

TEST_F(KernelEdgeTest, JoinWithEmptySides) {
  JoinFixture f(*catalog_, 0, kKernelBatchSize, "id", "id");
  Intermediate empty = f.AllRows(0);
  Intermediate full = f.AllRows(1);
  ASSERT_EQ(empty.size(), 0);
  // Empty build side.
  Intermediate out = BothJoins(empty, full, {&f.edge}, f.rels);
  EXPECT_EQ(out.size(), 0);
  ASSERT_EQ(out.rels.size(), 2u);
  ASSERT_EQ(out.columns.size(), 2u);
  // Empty probe side (empty input is the smaller one either way).
  out = BothJoins(full, empty, {&f.edge}, f.rels);
  EXPECT_EQ(out.size(), 0);
  // Both empty.
  JoinFixture g(*catalog_, 0, 0, "id", "id");
  out = BothJoins(g.AllRows(0), g.AllRows(1), {&g.edge}, g.rels);
  EXPECT_EQ(out.size(), 0);
}

TEST_F(KernelEdgeTest, SingleRowBuildSide) {
  JoinFixture f(*catalog_, 1, kKernelBatchSize + 1, "id", "parity");
  Intermediate one = f.AllRows(0);   // single row, id = 0
  Intermediate big = f.AllRows(1);
  ASSERT_EQ(one.size(), 1);
  // id 0 matches every even row of the probe side's parity column.
  Intermediate out = BothJoins(one, big, {&f.edge}, f.rels);
  EXPECT_EQ(out.size(), (big.size() + 1) / 2);
  // Single-row build with no match at all.
  JoinFixture g(*catalog_, 1, kKernelBatchSize, "nullable", "parity");
  // Row 0's `nullable` is NULL (0 % 7 == 0): a NULL key matches nothing.
  out = BothJoins(g.AllRows(0), g.AllRows(1), {&g.edge}, g.rels);
  EXPECT_EQ(out.size(), 0);
}

TEST_F(KernelEdgeTest, NullKeysNeverMatch) {
  int64_t n = kKernelBatchSize;
  JoinFixture f(*catalog_, n, n, "nullable", "id");
  Intermediate left = f.AllRows(0);
  Intermediate right = f.AllRows(1);
  Intermediate out = BothJoins(left, right, {&f.edge}, f.rels);
  // Every non-null `nullable` value i matches exactly id == i.
  int64_t nulls = (n + 6) / 7;
  EXPECT_EQ(out.size(), n - nulls);
}

TEST_F(KernelEdgeTest, DuplicateKeysMultiplyAtBatchBoundaries) {
  for (int64_t n : {static_cast<int64_t>(kKernelBatchSize) - 1,
                    static_cast<int64_t>(kKernelBatchSize),
                    static_cast<int64_t>(kKernelBatchSize) + 1}) {
    SCOPED_TRACE(n);
    JoinFixture f(*catalog_, n, n, "parity", "parity");
    Intermediate left = f.AllRows(0);
    Intermediate right = f.AllRows(1);
    // parity x parity: evens^2 + odds^2 tuples.
    int64_t evens = (n + 1) / 2;
    int64_t odds = n / 2;
    Intermediate out = BothJoins(left, right, {&f.edge}, f.rels);
    EXPECT_EQ(out.size(), evens * evens + odds * odds);
  }
}

TEST_F(KernelEdgeTest, MultiEdgeCompositeKeyAgrees) {
  int64_t n = kKernelBatchSize - 1;
  JoinFixture f(*catalog_, n, n, "id", "id");
  plan::JoinEdge second;
  second.left = plan::ColumnRef{0, f.rels.table(0).schema().FindColumn("parity"), ""};
  second.right = plan::ColumnRef{1, f.rels.table(1).schema().FindColumn("parity"), ""};
  Intermediate out = BothJoins(f.AllRows(0), f.AllRows(1),
                               {&f.edge, &second}, f.rels);
  EXPECT_EQ(out.size(), n);  // id = id already implies parity = parity
}

}  // namespace
}  // namespace reopt::exec
