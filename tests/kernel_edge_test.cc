// Edge-case coverage for the vectorized kernels: empty tables, all-rows-pass
// and zero-rows-pass selections, single-row build sides, NULL keys and NULL
// comparisons, selection-vector batch boundaries (kKernelBatchSize - 1,
// kKernelBatchSize, kKernelBatchSize + 1), and the typed fast-path /
// generic-fallback seams (mixed-type literals). Every case is asserted both
// against hand-computed expectations and against the retained scalar
// reference kernel, element for element.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "exec/kernel.h"
#include "exec/kernel_reference.h"
#include "storage/catalog.h"
#include "storage/column.h"
#include "tests/test_util.h"

namespace reopt::exec {
namespace {

using common::Value;

/// A private catalog with deterministic tables sized around the batch size.
class KernelEdgeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new storage::Catalog();
    // Tables "n<size>": id = 0..n-1, parity = id % 2, val = id / 2.0,
    // name = "row<id>", nullable = id (NULL every 7th row).
    for (int64_t n : {static_cast<int64_t>(0), static_cast<int64_t>(1),
                      static_cast<int64_t>(kKernelBatchSize) - 1,
                      static_cast<int64_t>(kKernelBatchSize),
                      static_cast<int64_t>(kKernelBatchSize) + 1}) {
      storage::Schema schema({{"id", common::DataType::kInt64},
                              {"parity", common::DataType::kInt64},
                              {"val", common::DataType::kDouble},
                              {"name", common::DataType::kString},
                              {"nullable", common::DataType::kInt64}});
      auto created = catalog_->CreateTable("n" + std::to_string(n),
                                           std::move(schema));
      ASSERT_TRUE(created.ok());
      storage::Table* t = created.value();
      for (int64_t i = 0; i < n; ++i) {
        t->AppendRow({Value::Int(i), Value::Int(i % 2),
                      Value::Real(static_cast<double>(i) / 2.0),
                      Value::Str("row" + std::to_string(i)),
                      i % 7 == 0 ? Value::Null_() : Value::Int(i)});
      }
    }
    // "edge_strings": adversarial string content for the LIKE / NULL-literal
    // audit — empty strings, literal '%' and '_' characters (wildcards only
    // have meaning in the *pattern*), spaces, and NULLs. Two batches' worth
    // so batched and scalar evaluation cross a boundary.
    {
      storage::Schema schema({{"id", common::DataType::kInt64},
                              {"s", common::DataType::kString}});
      auto created =
          catalog_->CreateTable("edge_strings", std::move(schema));
      ASSERT_TRUE(created.ok());
      storage::Table* t = created.value();
      const char* samples[] = {"",      "a",   "ab",    "abc", "%",
                               "%%",    "_",   "a%b",   "a_b", " ",
                               "  a  ", "ba",  "aba",   "bab", "A",
                               "aB",    "row", "row10", "%a%", "__"};
      constexpr int64_t kRows = 2 * kKernelBatchSize + 17;
      for (int64_t i = 0; i < kRows; ++i) {
        if (i % 11 == 3) {
          t->AppendRow({Value::Int(i), Value::Null_()});
        } else {
          t->AppendRow({Value::Int(i),
                        Value::Str(samples[i % (sizeof(samples) /
                                                sizeof(samples[0]))])});
        }
      }
    }
  }

  static const storage::Table& TableOfSize(int64_t n) {
    const storage::Table* t = catalog_->FindTable("n" + std::to_string(n));
    EXPECT_NE(t, nullptr);
    return *t;
  }

  static plan::ScanPredicate Pred(common::ColumnIdx col,
                                  plan::ScanPredicate::Kind kind,
                                  plan::CompareOp op, Value v,
                                  Value v2 = Value::Null_()) {
    plan::ScanPredicate p;
    p.column = plan::ColumnRef{0, col, ""};
    p.kind = kind;
    p.op = op;
    p.value = std::move(v);
    p.value2 = std::move(v2);
    return p;
  }

  /// Vectorized and reference FilterScan must agree element for element;
  /// returns the (shared) result.
  static std::vector<common::RowIdx> BothScans(
      const storage::Table& table,
      const std::vector<const plan::ScanPredicate*>& filters) {
    std::vector<common::RowIdx> vec = FilterScan(table, filters);
    std::vector<common::RowIdx> ref = reference::FilterScan(table, filters);
    EXPECT_EQ(vec, ref);
    return vec;
  }

  static storage::Catalog* catalog_;
};

storage::Catalog* KernelEdgeTest::catalog_ = nullptr;

// ---- FilterScan ------------------------------------------------------------

TEST_F(KernelEdgeTest, EmptyTableYieldsNoRows) {
  const storage::Table& empty = TableOfSize(0);
  EXPECT_TRUE(BothScans(empty, {}).empty());
  plan::ScanPredicate all = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                 plan::CompareOp::kGe, Value::Int(0));
  EXPECT_TRUE(BothScans(empty, {&all}).empty());
}

TEST_F(KernelEdgeTest, AllRowsPassAndZeroRowsPass) {
  for (int64_t n : {static_cast<int64_t>(1),
                    static_cast<int64_t>(kKernelBatchSize),
                    static_cast<int64_t>(kKernelBatchSize) + 1}) {
    const storage::Table& t = TableOfSize(n);
    plan::ScanPredicate all_pass = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                        plan::CompareOp::kGe, Value::Int(0));
    plan::ScanPredicate none_pass = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                         plan::CompareOp::kLt, Value::Int(0));
    EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&all_pass}).size()), n);
    EXPECT_TRUE(BothScans(t, {&none_pass}).empty());
    // Conjunction short-circuit: all-pass then none-pass.
    EXPECT_TRUE(BothScans(t, {&all_pass, &none_pass}).empty());
  }
}

TEST_F(KernelEdgeTest, BatchBoundarySizes) {
  for (int64_t n : {static_cast<int64_t>(kKernelBatchSize) - 1,
                    static_cast<int64_t>(kKernelBatchSize),
                    static_cast<int64_t>(kKernelBatchSize) + 1}) {
    SCOPED_TRACE(n);
    const storage::Table& t = TableOfSize(n);
    plan::ScanPredicate even = Pred(1, plan::ScanPredicate::Kind::kCompare,
                                    plan::CompareOp::kEq, Value::Int(0));
    EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&even}).size()), (n + 1) / 2);
    // Only the very last row — crosses the final (partial) batch.
    plan::ScanPredicate last = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                    plan::CompareOp::kEq, Value::Int(n - 1));
    std::vector<common::RowIdx> rows = BothScans(t, {&last});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], n - 1);
    // No predicate: identity selection at every boundary size.
    EXPECT_EQ(static_cast<int64_t>(BothScans(t, {}).size()), n);
  }
}

TEST_F(KernelEdgeTest, NullSemanticsAcrossKinds) {
  const storage::Table& t = TableOfSize(kKernelBatchSize + 1);
  int64_t n = t.num_rows();
  int64_t nulls = (n + 6) / 7;  // rows 0, 7, 14, ...
  plan::ScanPredicate is_null =
      Pred(4, plan::ScanPredicate::Kind::kIsNull, plan::CompareOp::kEq,
           Value::Null_());
  plan::ScanPredicate is_not_null =
      Pred(4, plan::ScanPredicate::Kind::kIsNotNull, plan::CompareOp::kEq,
           Value::Null_());
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&is_null}).size()), nulls);
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&is_not_null}).size()),
            n - nulls);
  // NULL fails every comparison: >= 0 matches only the non-null rows.
  plan::ScanPredicate ge0 = Pred(4, plan::ScanPredicate::Kind::kCompare,
                                 plan::CompareOp::kGe, Value::Int(0));
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&ge0}).size()), n - nulls);
  // IS NULL on a column with no validity bitmap (id is never null).
  plan::ScanPredicate id_null =
      Pred(0, plan::ScanPredicate::Kind::kIsNull, plan::CompareOp::kEq,
           Value::Null_());
  EXPECT_TRUE(BothScans(t, {&id_null}).empty());
}

TEST_F(KernelEdgeTest, TypedFastPathAndGenericFallbackAgree) {
  const storage::Table& t = TableOfSize(kKernelBatchSize);
  // Double literal against the INT64 id column (coerced comparison).
  plan::ScanPredicate dbl = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                 plan::CompareOp::kLt, Value::Real(10.5));
  EXPECT_EQ(BothScans(t, {&dbl}).size(), 11u);
  // NULL literal: no non-null value compares equal / less.
  plan::ScanPredicate null_eq = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                     plan::CompareOp::kEq, Value::Null_());
  EXPECT_TRUE(BothScans(t, {&null_eq}).empty());
  plan::ScanPredicate null_gt = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                     plan::CompareOp::kGt, Value::Null_());
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&null_gt}).size()),
            t.num_rows());
  // Mixed-type IN list (int column, int + double candidates).
  plan::ScanPredicate mixed_in;
  mixed_in.column = plan::ColumnRef{0, 0, ""};
  mixed_in.kind = plan::ScanPredicate::Kind::kIn;
  mixed_in.in_list = {Value::Int(3), Value::Real(5.0), Value::Null_()};
  EXPECT_EQ(BothScans(t, {&mixed_in}).size(), 2u);
  // BETWEEN over doubles.
  plan::ScanPredicate between_d =
      Pred(2, plan::ScanPredicate::Kind::kBetween, plan::CompareOp::kEq,
           Value::Real(1.0), Value::Real(2.0));
  EXPECT_EQ(BothScans(t, {&between_d}).size(), 3u);  // val in {1.0, 1.5, 2.0}
  // Mixed int/double BETWEEN bounds on an int column: per-bound coercion
  // semantics, preserved via the generic fallback.
  plan::ScanPredicate mixed_between =
      Pred(0, plan::ScanPredicate::Kind::kBetween, plan::CompareOp::kEq,
           Value::Int(5), Value::Real(9.5));
  EXPECT_EQ(BothScans(t, {&mixed_between}).size(), 5u);  // ids 5..9
}

TEST_F(KernelEdgeTest, LikeShapeClassificationMatchesReference) {
  const storage::Table& t = TableOfSize(kKernelBatchSize);
  int64_t n = t.num_rows();
  auto like = [&](const char* pattern, bool negated = false) {
    return Pred(3,
                negated ? plan::ScanPredicate::Kind::kNotLike
                        : plan::ScanPredicate::Kind::kLike,
                plan::CompareOp::kEq, Value::Str(pattern));
  };
  // Every anchored shape plus the generic fallback, against the reference.
  plan::ScanPredicate any = like("%");           // kAny
  plan::ScanPredicate any2 = like("%%");         // kAny
  plan::ScanPredicate empty = like("");          // exact empty: no match
  plan::ScanPredicate exact = like("row7");      // kExact
  plan::ScanPredicate prefix = like("row99%");   // kPrefix
  plan::ScanPredicate suffix = like("%77");      // kSuffix
  plan::ScanPredicate contains = like("%w10%");  // kContains
  plan::ScanPredicate underscore = like("row_");    // general pattern
  plan::ScanPredicate inner = like("row%7");        // general pattern
  plan::ScanPredicate not_prefix = like("row1%", /*negated=*/true);
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&any}).size()), n);
  EXPECT_EQ(static_cast<int64_t>(BothScans(t, {&any2}).size()), n);
  EXPECT_TRUE(BothScans(t, {&empty}).empty());
  EXPECT_EQ(BothScans(t, {&exact}).size(), 1u);
  EXPECT_EQ(BothScans(t, {&prefix}).size(), 11u);  // row99, row990..row999
  EXPECT_FALSE(BothScans(t, {&suffix}).empty());
  EXPECT_FALSE(BothScans(t, {&contains}).empty());
  EXPECT_EQ(BothScans(t, {&underscore}).size(), 10u);  // row0..row9
  EXPECT_FALSE(BothScans(t, {&inner}).empty());
  BothScans(t, {&not_prefix});
}

// ---- ClassifyLike / typed-binding audit: NULL literals and empty strings.
// The scalar kernel (EvalPredicate -> common::LikeMatch / Value::Compare)
// is the semantics spec; these tables pin that the typed fast paths and
// the ClassifyLike shape classification never diverge from it on the edge
// cases the JOB-like generator can produce: empty patterns, all-'%'
// patterns, wildcard characters as *data*, empty-string literals and rows,
// NULL literals in comparisons / BETWEEN / IN, and NULL rows under every
// shape. (A NULL literal directly under LIKE is unrepresentable: the
// parser only produces string patterns, and both kernels would reject it
// identically in Value::AsString.)

TEST_F(KernelEdgeTest, LikePatternTableDrivenAudit) {
  const storage::Table* t = catalog_->FindTable("edge_strings");
  ASSERT_NE(t, nullptr);
  const common::ColumnIdx s_col = t->schema().FindColumn("s");
  // Every ClassifyLike shape, with empty / wildcard-bearing needles.
  const char* patterns[] = {
      "",        // exact with empty needle: matches only ""
      "%",       // kAny
      "%%",      // kAny
      "%%%",     // kAny
      "a",       // exact
      "ab",      // exact
      "a%",      // prefix
      "%a",      // suffix
      "%a%",     // contains
      "%ab%",    // contains
      "% %",     // contains (space needle)
      "_",       // general: any single char
      "__",      // general: any two chars
      "%_",      // general: at least one char
      "_%",      // general
      "a_b",     // general
      "a%b",     // prefix+suffix composite -> general (inner %)
      "%a%b%",   // general (two cores)
      "aba",     // exact, also appears verbatim as data
      "row1%",   // prefix
      "%10",     // suffix
      "A",       // exact, case-sensitive
      "%B",      // suffix, case-sensitive
  };
  for (const char* pattern : patterns) {
    SCOPED_TRACE(std::string("pattern '") + pattern + "'");
    plan::ScanPredicate like = Pred(s_col, plan::ScanPredicate::Kind::kLike,
                                    plan::CompareOp::kEq,
                                    Value::Str(pattern));
    plan::ScanPredicate not_like =
        Pred(s_col, plan::ScanPredicate::Kind::kNotLike,
             plan::CompareOp::kEq, Value::Str(pattern));
    std::vector<common::RowIdx> pos = BothScans(*t, {&like});
    std::vector<common::RowIdx> neg = BothScans(*t, {&not_like});
    // LIKE and NOT LIKE partition the non-NULL rows exactly (NULL rows
    // fail both, per the scalar kernel's NULL-fails-everything rule).
    int64_t nulls = 0;
    for (int64_t i = 0; i < t->num_rows(); ++i) {
      if (t->column(s_col).IsNull(i)) ++nulls;
    }
    EXPECT_EQ(static_cast<int64_t>(pos.size() + neg.size()),
              t->num_rows() - nulls);
  }
  // Hand-pinned counts for the load-bearing shapes (per 20-sample cycle:
  // "" once; "%"-data rows are matched by exact "%" via the general
  // matcher only as wildcards, not literally — the pattern "%" matches
  // everything non-NULL).
  plan::ScanPredicate any = Pred(s_col, plan::ScanPredicate::Kind::kLike,
                                 plan::CompareOp::kEq, Value::Str("%"));
  int64_t nulls = 0;
  for (int64_t i = 0; i < t->num_rows(); ++i) {
    if (t->column(s_col).IsNull(i)) ++nulls;
  }
  EXPECT_EQ(static_cast<int64_t>(BothScans(*t, {&any}).size()),
            t->num_rows() - nulls);
  plan::ScanPredicate empty_exact =
      Pred(s_col, plan::ScanPredicate::Kind::kLike, plan::CompareOp::kEq,
           Value::Str(""));
  for (common::RowIdx r : BothScans(*t, {&empty_exact})) {
    EXPECT_EQ(t->column(s_col).GetString(r), "");  // only empty strings
  }
}

TEST_F(KernelEdgeTest, NullLiteralAndEmptyStringPredicateAudit) {
  const storage::Table* t = catalog_->FindTable("edge_strings");
  ASSERT_NE(t, nullptr);
  const common::ColumnIdx s_col = t->schema().FindColumn("s");
  const common::ColumnIdx id_col = t->schema().FindColumn("id");

  struct Case {
    const char* label;
    plan::ScanPredicate pred;
  };
  std::vector<Case> cases;
  // NULL literal under every comparison op, string and int columns: the
  // scalar spec says NULL sorts below everything, so e.g. `s > NULL`
  // passes every non-NULL row and `s = NULL` / `s < NULL` pass none.
  for (plan::CompareOp op :
       {plan::CompareOp::kEq, plan::CompareOp::kNe, plan::CompareOp::kLt,
        plan::CompareOp::kLe, plan::CompareOp::kGt, plan::CompareOp::kGe}) {
    cases.push_back({"s <op> NULL",
                     Pred(s_col, plan::ScanPredicate::Kind::kCompare, op,
                          Value::Null_())});
    cases.push_back({"id <op> NULL",
                     Pred(id_col, plan::ScanPredicate::Kind::kCompare, op,
                          Value::Null_())});
    // Empty-string literal: "" sorts below every non-empty string but
    // above NULL.
    cases.push_back({"s <op> ''",
                     Pred(s_col, plan::ScanPredicate::Kind::kCompare, op,
                          Value::Str(""))});
  }
  // BETWEEN with NULL bounds (either side, both sides) and empty-string
  // bounds.
  cases.push_back({"s BETWEEN NULL AND 'b'",
                   Pred(s_col, plan::ScanPredicate::Kind::kBetween,
                        plan::CompareOp::kEq, Value::Null_(),
                        Value::Str("b"))});
  cases.push_back({"s BETWEEN 'a' AND NULL",
                   Pred(s_col, plan::ScanPredicate::Kind::kBetween,
                        plan::CompareOp::kEq, Value::Str("a"),
                        Value::Null_())});
  cases.push_back({"s BETWEEN NULL AND NULL",
                   Pred(s_col, plan::ScanPredicate::Kind::kBetween,
                        plan::CompareOp::kEq, Value::Null_(),
                        Value::Null_())});
  cases.push_back({"s BETWEEN '' AND 'a'",
                   Pred(s_col, plan::ScanPredicate::Kind::kBetween,
                        plan::CompareOp::kEq, Value::Str(""),
                        Value::Str("a"))});
  cases.push_back({"id BETWEEN NULL AND 10",
                   Pred(id_col, plan::ScanPredicate::Kind::kBetween,
                        plan::CompareOp::kEq, Value::Null_(),
                        Value::Int(10))});
  // IN lists: all-NULL, NULL mixed with strings, empty strings as
  // candidates, empty list.
  auto in_pred = [&](common::ColumnIdx col, std::vector<Value> list) {
    plan::ScanPredicate p;
    p.column = plan::ColumnRef{0, col, ""};
    p.kind = plan::ScanPredicate::Kind::kIn;
    p.in_list = std::move(list);
    return p;
  };
  cases.push_back({"s IN (NULL)", in_pred(s_col, {Value::Null_()})});
  cases.push_back({"s IN (NULL, NULL)",
                   in_pred(s_col, {Value::Null_(), Value::Null_()})});
  cases.push_back(
      {"s IN ('', NULL, 'a')",
       in_pred(s_col, {Value::Str(""), Value::Null_(), Value::Str("a")})});
  cases.push_back({"s IN ('%', '_')",
                   in_pred(s_col, {Value::Str("%"), Value::Str("_")})});
  cases.push_back({"s IN ()", in_pred(s_col, {})});
  cases.push_back({"id IN (NULL, 3)",
                   in_pred(id_col, {Value::Null_(), Value::Int(3)})});
  cases.push_back({"id IN ()", in_pred(id_col, {})});

  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    BothScans(*t, {&c.pred});
  }

  // Spot-pin the scalar spec itself so a joint regression of both kernels
  // cannot slip through: NULL-literal comparisons follow Value::Compare
  // (NULL sorts first), and NULL *rows* fail every comparison.
  int64_t nulls = 0;
  for (int64_t i = 0; i < t->num_rows(); ++i) {
    if (t->column(s_col).IsNull(i)) ++nulls;
  }
  plan::ScanPredicate gt_null = Pred(
      s_col, plan::ScanPredicate::Kind::kCompare, plan::CompareOp::kGt,
      Value::Null_());
  EXPECT_EQ(static_cast<int64_t>(BothScans(*t, {&gt_null}).size()),
            t->num_rows() - nulls);
  plan::ScanPredicate eq_null = Pred(
      s_col, plan::ScanPredicate::Kind::kCompare, plan::CompareOp::kEq,
      Value::Null_());
  EXPECT_TRUE(BothScans(*t, {&eq_null}).empty());
  plan::ScanPredicate ge_empty = Pred(
      s_col, plan::ScanPredicate::Kind::kCompare, plan::CompareOp::kGe,
      Value::Str(""));
  EXPECT_EQ(static_cast<int64_t>(BothScans(*t, {&ge_empty}).size()),
            t->num_rows() - nulls);  // every non-NULL string >= ""
}

TEST_F(KernelEdgeTest, StringBetweenMatchesReferenceExactly) {
  const storage::Table& t = TableOfSize(kKernelBatchSize);
  plan::ScanPredicate between_s =
      Pred(3, plan::ScanPredicate::Kind::kBetween, plan::CompareOp::kEq,
           Value::Str("row10"), Value::Str("row11"));
  // Cross-check only (lexicographic count is non-obvious): vectorized ==
  // reference is the invariant that matters.
  std::vector<common::RowIdx> rows = BothScans(t, {&between_s});
  EXPECT_FALSE(rows.empty());
}

// ---- Encoding edge cases ---------------------------------------------------
// Dictionary- and partition-encoded columns must be observationally
// identical to plain twins holding the same rows, under both kernels:
// FilterScan(encoded, vectorized) == FilterScan(encoded, reference) ==
// FilterScan(plain, either). Covers the degenerate dictionaries (empty
// table, all-NULL column, single distinct value), partition boundaries at
// kKernelBatchSize +/- 1, an entirely-NULL partition, NaN-poisoned zone
// maps, and the morsel-parallel scan path over partitioned columns.

TEST_F(KernelEdgeTest, DictionaryEncodingDegenerateShapes) {
  const int64_t kB = kKernelBatchSize;
  struct Shape {
    const char* name;
    int64_t rows;
    std::function<Value(int64_t)> value;  // string or NULL per row
    size_t dict_size;
  };
  const std::vector<Shape> shapes = {
      // Zero rows: EncodeDictionary of nothing -> empty dictionary.
      {"dict_empty", 0, [](int64_t) { return Value::Null_(); }, 0u},
      // Every row NULL: empty dictionary, every code -1.
      {"dict_all_null", 2 * kB + 5, [](int64_t) { return Value::Null_(); },
       0u},
      // One distinct value (plus NULLs): single-entry dictionary, so every
      // compiled code range is either empty or [0, 1).
      {"dict_single", kB + 3,
       [](int64_t i) {
         return i % 7 == 0 ? Value::Null_() : Value::Str("only");
       },
       1u},
      // Five distinct values across two-and-a-bit batches.
      {"dict_mixed", 2 * kB + 17,
       [](int64_t i) {
         return i % 11 == 3 ? Value::Null_()
                            : Value::Str("v" + std::to_string(i % 5));
       },
       5u},
  };
  for (const Shape& shape : shapes) {
    SCOPED_TRACE(shape.name);
    storage::Table* dict = nullptr;
    storage::Table* plain = nullptr;
    for (bool encode : {true, false}) {
      auto created = catalog_->CreateTable(
          std::string(shape.name) + (encode ? "" : "_plain"),
          storage::Schema({{"id", common::DataType::kInt64},
                           {"s", common::DataType::kString}}));
      ASSERT_TRUE(created.ok());
      storage::Table* t = created.value();
      for (int64_t i = 0; i < shape.rows; ++i) {
        t->AppendRow({Value::Int(i), shape.value(i)});
      }
      if (encode) {
        t->mutable_column(1).EncodeDictionary();
        dict = t;
      } else {
        plain = t;
      }
    }
    ASSERT_EQ(dict->column(1).encoding(),
              storage::ColumnEncoding::kDictionary);
    EXPECT_EQ(dict->column(1).dictionary().size(), shape.dict_size);
    EXPECT_TRUE(std::is_sorted(dict->column(1).dictionary().begin(),
                               dict->column(1).dictionary().end()));

    // Probe constants bracketing the dictionary: below every entry (""),
    // each present value, absent values falling between / above entries.
    std::vector<plan::ScanPredicate> preds;
    for (const char* probe :
         {"", "only", "onlz", "v0", "v2", "v2a", "v4", "zz"}) {
      for (plan::CompareOp op :
           {plan::CompareOp::kEq, plan::CompareOp::kNe, plan::CompareOp::kLt,
            plan::CompareOp::kLe, plan::CompareOp::kGt,
            plan::CompareOp::kGe}) {
        preds.push_back(Pred(1, plan::ScanPredicate::Kind::kCompare, op,
                             Value::Str(probe)));
      }
    }
    // LIKE shapes over the dictionary (evaluated once per entry on the
    // dict path, once per row on plain): exact, any, prefix, suffix,
    // contains, underscore, and patterns matching nothing.
    for (const char* pattern :
         {"%", "", "v2", "only", "v%", "%2", "%2%", "o_ly", "%nl%", "w%"}) {
      preds.push_back(Pred(1, plan::ScanPredicate::Kind::kLike,
                           plan::CompareOp::kEq, Value::Str(pattern)));
      preds.push_back(Pred(1, plan::ScanPredicate::Kind::kNotLike,
                           plan::CompareOp::kEq, Value::Str(pattern)));
    }
    preds.push_back(Pred(1, plan::ScanPredicate::Kind::kBetween,
                         plan::CompareOp::kEq, Value::Str("v1"),
                         Value::Str("v3")));
    preds.push_back(Pred(1, plan::ScanPredicate::Kind::kBetween,
                         plan::CompareOp::kEq, Value::Str("a"),
                         Value::Str("b")));
    preds.push_back(Pred(1, plan::ScanPredicate::Kind::kIsNull,
                         plan::CompareOp::kEq, Value::Null_()));
    preds.push_back(Pred(1, plan::ScanPredicate::Kind::kIsNotNull,
                         plan::CompareOp::kEq, Value::Null_()));
    auto in_pred = [](std::vector<Value> list) {
      plan::ScanPredicate p;
      p.column = plan::ColumnRef{0, 1, ""};
      p.kind = plan::ScanPredicate::Kind::kIn;
      p.in_list = std::move(list);
      return p;
    };
    preds.push_back(in_pred({Value::Str("v1"), Value::Str("zz"),
                             Value::Null_()}));
    preds.push_back(in_pred({Value::Str("only")}));
    preds.push_back(in_pred({}));

    for (size_t i = 0; i < preds.size(); ++i) {
      SCOPED_TRACE("predicate #" + std::to_string(i));
      EXPECT_EQ(BothScans(*dict, {&preds[i]}), BothScans(*plain, {&preds[i]}));
    }
  }
}

TEST_F(KernelEdgeTest, PartitionBoundariesAndZoneMapSkipping) {
  const int64_t kB = kKernelBatchSize;
  // 5 * kB + 1 clears the morsel-parallel row threshold; the others pin
  // the final-partial-partition arithmetic at the batch boundary.
  for (int64_t n : {kB - 1, kB, kB + 1, 5 * kB + 1}) {
    SCOPED_TRACE(n);
    storage::Table* enc = nullptr;
    storage::Table* plain = nullptr;
    for (bool encode : {true, false}) {
      auto created = catalog_->CreateTable(
          "part" + std::to_string(n) + (encode ? "" : "_plain"),
          storage::Schema({{"id", common::DataType::kInt64},
                           {"val", common::DataType::kDouble},
                           {"nullable", common::DataType::kInt64}}));
      ASSERT_TRUE(created.ok());
      storage::Table* t = created.value();
      for (int64_t i = 0; i < n; ++i) {
        // The entire second partition of `nullable` is NULL (when the
        // table has one), so its zone map has no values at all and is
        // unconditionally skippable.
        bool null_row = i % 7 == 0 || i / kB == 1;
        t->AppendRow({Value::Int(i),
                      Value::Real(static_cast<double>(i) / 2.0),
                      null_row ? Value::Null_() : Value::Int(i)});
      }
      if (encode) {
        for (common::ColumnIdx c = 0; c < 3; ++c) {
          t->mutable_column(c).EncodePartitioned();
        }
        enc = t;
      } else {
        plain = t;
      }
    }
    ASSERT_EQ(enc->column(0).encoding(),
              storage::ColumnEncoding::kPartitioned);
    EXPECT_EQ(static_cast<int64_t>(enc->column(0).zones().size()),
              (n + kB - 1) / kB);

    // Constants chosen to make individual partitions skippable: the id
    // column is ascending, so point/range predicates reject every
    // partition whose [min, max] misses the constant.
    std::vector<plan::ScanPredicate> preds;
    for (int64_t c : {static_cast<int64_t>(0), static_cast<int64_t>(5),
                      kB - 1, kB, kB + 1, n - 1, n, static_cast<int64_t>(-1)}) {
      for (plan::CompareOp op :
           {plan::CompareOp::kEq, plan::CompareOp::kNe, plan::CompareOp::kLt,
            plan::CompareOp::kLe, plan::CompareOp::kGt,
            plan::CompareOp::kGe}) {
        preds.push_back(Pred(0, plan::ScanPredicate::Kind::kCompare, op,
                             Value::Int(c)));
      }
    }
    // BETWEEN straddling a partition boundary, fully inside one
    // partition, and empty.
    preds.push_back(Pred(0, plan::ScanPredicate::Kind::kBetween,
                         plan::CompareOp::kEq, Value::Int(kB - 1),
                         Value::Int(kB + 1)));
    preds.push_back(Pred(0, plan::ScanPredicate::Kind::kBetween,
                         plan::CompareOp::kEq, Value::Int(3),
                         Value::Int(7)));
    preds.push_back(Pred(0, plan::ScanPredicate::Kind::kBetween,
                         plan::CompareOp::kEq, Value::Int(n),
                         Value::Int(2 * n)));
    // Doubles: typed double path with zone maps.
    preds.push_back(Pred(1, plan::ScanPredicate::Kind::kCompare,
                         plan::CompareOp::kLt, Value::Real(10.5)));
    preds.push_back(Pred(1, plan::ScanPredicate::Kind::kBetween,
                         plan::CompareOp::kEq, Value::Real(1.0),
                         Value::Real(2.0)));
    preds.push_back(Pred(1, plan::ScanPredicate::Kind::kCompare,
                         plan::CompareOp::kGt,
                         Value::Real(static_cast<double>(n - 3) / 2.0)));
    // The all-NULL partition: any comparison must skip it, IS NULL must
    // still see it.
    preds.push_back(Pred(2, plan::ScanPredicate::Kind::kCompare,
                         plan::CompareOp::kEq, Value::Int(kB + 2)));
    preds.push_back(Pred(2, plan::ScanPredicate::Kind::kCompare,
                         plan::CompareOp::kGe, Value::Int(0)));
    preds.push_back(Pred(2, plan::ScanPredicate::Kind::kIsNull,
                         plan::CompareOp::kEq, Value::Null_()));
    preds.push_back(Pred(2, plan::ScanPredicate::Kind::kIsNotNull,
                         plan::CompareOp::kEq, Value::Null_()));

    for (size_t i = 0; i < preds.size(); ++i) {
      SCOPED_TRACE("predicate #" + std::to_string(i));
      EXPECT_EQ(BothScans(*enc, {&preds[i]}), BothScans(*plain, {&preds[i]}));
    }

    // Morsel-parallel scans consult the same zone maps (morsels are
    // partition-aligned): identical output at every thread count.
    common::ThreadPool pool(3);
    plan::ScanPredicate point = Pred(0, plan::ScanPredicate::Kind::kCompare,
                                     plan::CompareOp::kEq, Value::Int(n - 1));
    plan::ScanPredicate range = Pred(0, plan::ScanPredicate::Kind::kBetween,
                                     plan::CompareOp::kEq, Value::Int(kB - 1),
                                     Value::Int(kB + 1));
    for (int threads : {2, 3}) {
      MorselContext ctx{threads, &pool};
      EXPECT_EQ(FilterScanParallel(*enc, {&point}, ctx),
                FilterScan(*enc, {&point}));
      EXPECT_EQ(FilterScanParallel(*enc, {&range}, ctx),
                FilterScan(*enc, {&range}));
    }
  }
}

TEST_F(KernelEdgeTest, NaNRowsPoisonZoneMapsButNeverSkipWrongly) {
  const int64_t kB = kKernelBatchSize;
  const int64_t n = 3 * kB + 5;
  // Partition 1 of `d` contains NaN rows, so its zone map cannot offer
  // usable bounds and must never be skipped; partitions 0 and 2 are clean
  // and remain skippable.
  storage::Table* enc = nullptr;
  storage::Table* plain = nullptr;
  for (bool encode : {true, false}) {
    auto created = catalog_->CreateTable(
        std::string("nanp") + (encode ? "" : "_plain"),
        storage::Schema({{"id", common::DataType::kInt64},
                         {"d", common::DataType::kDouble}}));
    ASSERT_TRUE(created.ok());
    storage::Table* t = created.value();
    for (int64_t i = 0; i < n; ++i) {
      Value d;
      if (i % 13 == 5) {
        d = Value::Null_();
      } else if (i / kB == 1 && i % 3 == 0) {
        d = Value::Real(std::numeric_limits<double>::quiet_NaN());
      } else {
        d = Value::Real(static_cast<double>(i) / 2.0);
      }
      t->AppendRow({Value::Int(i), std::move(d)});
    }
    if (encode) {
      t->mutable_column(1).EncodePartitioned();
      enc = t;
    } else {
      plain = t;
    }
  }
  ASSERT_EQ(enc->column(1).encoding(), storage::ColumnEncoding::kPartitioned);

  std::vector<plan::ScanPredicate> preds;
  // Constants inside partition 0's range, inside the NaN partition's
  // nominal range, inside partition 2's range, and outside all of them.
  for (double c : {100.0, static_cast<double>(kB) / 2.0 + 60.0,
                   static_cast<double>(kB), 2.5 * kB, -1.0,
                   static_cast<double>(n)}) {
    for (plan::CompareOp op :
         {plan::CompareOp::kEq, plan::CompareOp::kNe, plan::CompareOp::kLt,
          plan::CompareOp::kLe, plan::CompareOp::kGt, plan::CompareOp::kGe}) {
      preds.push_back(Pred(1, plan::ScanPredicate::Kind::kCompare, op,
                           Value::Real(c)));
    }
  }
  preds.push_back(Pred(1, plan::ScanPredicate::Kind::kBetween,
                       plan::CompareOp::kEq,
                       Value::Real(static_cast<double>(kB) / 2.0),
                       Value::Real(static_cast<double>(kB))));
  preds.push_back(Pred(1, plan::ScanPredicate::Kind::kIsNull,
                       plan::CompareOp::kEq, Value::Null_()));
  preds.push_back(Pred(1, plan::ScanPredicate::Kind::kIsNotNull,
                       plan::CompareOp::kEq, Value::Null_()));
  for (size_t i = 0; i < preds.size(); ++i) {
    SCOPED_TRACE("predicate #" + std::to_string(i));
    EXPECT_EQ(BothScans(*enc, {&preds[i]}), BothScans(*plain, {&preds[i]}));
  }
}

// ---- HashJoinIntermediates -------------------------------------------------

/// Two-relation spec over tables of size `left_n` and `right_n`, joined on
/// the given columns.
struct JoinFixture {
  plan::QuerySpec spec;
  BoundRelations rels;
  plan::JoinEdge edge;

  JoinFixture(const storage::Catalog& catalog, int64_t left_n, int64_t right_n,
              const char* left_col, const char* right_col) {
    spec.relations.push_back(
        plan::RelationRef{"n" + std::to_string(left_n), "l"});
    spec.relations.push_back(
        plan::RelationRef{"n" + std::to_string(right_n), "r"});
    rels = BindRelations(spec, catalog);
    edge.left = plan::ColumnRef{
        0, rels.table(0).schema().FindColumn(left_col), ""};
    edge.right = plan::ColumnRef{
        1, rels.table(1).schema().FindColumn(right_col), ""};
  }

  Intermediate AllRows(int rel) const {
    const storage::Table& t = rels.table(rel);
    std::vector<common::RowIdx> rows(static_cast<size_t>(t.num_rows()));
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<common::RowIdx>(i);
    }
    return Intermediate::FromRows(rel, std::move(rows));
  }
};

/// Vectorized and reference joins must agree on rels and on every column,
/// element for element (same tuples in the same order).
Intermediate BothJoins(const Intermediate& left, const Intermediate& right,
                       const std::vector<const plan::JoinEdge*>& edges,
                       const BoundRelations& rels) {
  Intermediate vec = HashJoinIntermediates(left, right, edges, rels);
  Intermediate ref = reference::HashJoinIntermediates(left, right, edges, rels);
  EXPECT_EQ(vec.rels, ref.rels);
  EXPECT_EQ(vec.columns, ref.columns);
  return vec;
}

TEST_F(KernelEdgeTest, JoinWithEmptySides) {
  JoinFixture f(*catalog_, 0, kKernelBatchSize, "id", "id");
  Intermediate empty = f.AllRows(0);
  Intermediate full = f.AllRows(1);
  ASSERT_EQ(empty.size(), 0);
  // Empty build side.
  Intermediate out = BothJoins(empty, full, {&f.edge}, f.rels);
  EXPECT_EQ(out.size(), 0);
  ASSERT_EQ(out.rels.size(), 2u);
  ASSERT_EQ(out.columns.size(), 2u);
  // Empty probe side (empty input is the smaller one either way).
  out = BothJoins(full, empty, {&f.edge}, f.rels);
  EXPECT_EQ(out.size(), 0);
  // Both empty.
  JoinFixture g(*catalog_, 0, 0, "id", "id");
  out = BothJoins(g.AllRows(0), g.AllRows(1), {&g.edge}, g.rels);
  EXPECT_EQ(out.size(), 0);
}

TEST_F(KernelEdgeTest, SingleRowBuildSide) {
  JoinFixture f(*catalog_, 1, kKernelBatchSize + 1, "id", "parity");
  Intermediate one = f.AllRows(0);   // single row, id = 0
  Intermediate big = f.AllRows(1);
  ASSERT_EQ(one.size(), 1);
  // id 0 matches every even row of the probe side's parity column.
  Intermediate out = BothJoins(one, big, {&f.edge}, f.rels);
  EXPECT_EQ(out.size(), (big.size() + 1) / 2);
  // Single-row build with no match at all.
  JoinFixture g(*catalog_, 1, kKernelBatchSize, "nullable", "parity");
  // Row 0's `nullable` is NULL (0 % 7 == 0): a NULL key matches nothing.
  out = BothJoins(g.AllRows(0), g.AllRows(1), {&g.edge}, g.rels);
  EXPECT_EQ(out.size(), 0);
}

TEST_F(KernelEdgeTest, NullKeysNeverMatch) {
  int64_t n = kKernelBatchSize;
  JoinFixture f(*catalog_, n, n, "nullable", "id");
  Intermediate left = f.AllRows(0);
  Intermediate right = f.AllRows(1);
  Intermediate out = BothJoins(left, right, {&f.edge}, f.rels);
  // Every non-null `nullable` value i matches exactly id == i.
  int64_t nulls = (n + 6) / 7;
  EXPECT_EQ(out.size(), n - nulls);
}

TEST_F(KernelEdgeTest, DuplicateKeysMultiplyAtBatchBoundaries) {
  for (int64_t n : {static_cast<int64_t>(kKernelBatchSize) - 1,
                    static_cast<int64_t>(kKernelBatchSize),
                    static_cast<int64_t>(kKernelBatchSize) + 1}) {
    SCOPED_TRACE(n);
    JoinFixture f(*catalog_, n, n, "parity", "parity");
    Intermediate left = f.AllRows(0);
    Intermediate right = f.AllRows(1);
    // parity x parity: evens^2 + odds^2 tuples.
    int64_t evens = (n + 1) / 2;
    int64_t odds = n / 2;
    Intermediate out = BothJoins(left, right, {&f.edge}, f.rels);
    EXPECT_EQ(out.size(), evens * evens + odds * odds);
  }
}

TEST_F(KernelEdgeTest, MultiEdgeCompositeKeyAgrees) {
  int64_t n = kKernelBatchSize - 1;
  JoinFixture f(*catalog_, n, n, "id", "id");
  plan::JoinEdge second;
  second.left = plan::ColumnRef{0, f.rels.table(0).schema().FindColumn("parity"), ""};
  second.right = plan::ColumnRef{1, f.rels.table(1).schema().FindColumn("parity"), ""};
  Intermediate out = BothJoins(f.AllRows(0), f.AllRows(1),
                               {&f.edge, &second}, f.rels);
  EXPECT_EQ(out.size(), n);  // id = id already implies parity = parity
}

// ---- Morsel-parallel kernels -----------------------------------------------
// The parallel entry points must be byte-identical to the serial kernels
// at every thread count — including the radix-partitioned build (large
// build side), duplicate chains, NULL keys, and the small-input fallback.

TEST_F(KernelEdgeTest, ParallelKernelsMatchSerialOnLargeInputs) {
  // A table big enough to clear the parallel thresholds (> 4096 rows) with
  // duplicate join keys (mod -> chains of ~3) and NULL keys every 7th row.
  const int64_t kBig = 12 * kKernelBatchSize + 37;
  if (catalog_->FindTable("edge_big") == nullptr) {
    storage::Schema schema({{"id", common::DataType::kInt64},
                            {"mod", common::DataType::kInt64},
                            {"nmod", common::DataType::kInt64}});
    auto created = catalog_->CreateTable("edge_big", std::move(schema));
    ASSERT_TRUE(created.ok());
    storage::Table* t = created.value();
    for (int64_t i = 0; i < kBig; ++i) {
      t->AppendRow({Value::Int(i), Value::Int(i % 4096),
                    i % 7 == 0 ? Value::Null_()
                               : Value::Int((i * 31) % 4096)});
    }
  }
  const storage::Table& big = *catalog_->FindTable("edge_big");

  common::ThreadPool pool(4);
  for (int threads : {2, 3, 4}) {
    SCOPED_TRACE(threads);
    MorselContext ctx{threads, &pool};

    // FilterScan: selective + NULL-bearing predicates.
    plan::ScanPredicate range = Pred(1, plan::ScanPredicate::Kind::kBetween,
                                     plan::CompareOp::kEq, Value::Int(100),
                                     Value::Int(3000));
    plan::ScanPredicate nn = Pred(2, plan::ScanPredicate::Kind::kCompare,
                                  plan::CompareOp::kGe, Value::Int(0));
    EXPECT_EQ(FilterScanParallel(big, {&range, &nn}, ctx),
              FilterScan(big, {&range, &nn}));
    EXPECT_EQ(FilterScanParallel(big, {}, ctx), FilterScan(big, {}));

    // Hash join, both sides large: the build side (>= 4096 keyed rows)
    // takes the radix-partitioned insert; `mod` duplicates exercise chain
    // order, `nmod` NULLs exercise has_key.
    plan::QuerySpec spec;
    spec.relations.push_back(plan::RelationRef{"edge_big", "l"});
    spec.relations.push_back(plan::RelationRef{"edge_big", "r"});
    BoundRelations rels = BindRelations(spec, *catalog_);
    auto all_rows = [&](int rel) {
      std::vector<common::RowIdx> rows(static_cast<size_t>(big.num_rows()));
      for (size_t i = 0; i < rows.size(); ++i) {
        rows[i] = static_cast<common::RowIdx>(i);
      }
      return Intermediate::FromRows(rel, std::move(rows));
    };
    plan::JoinEdge edge;
    edge.left = plan::ColumnRef{0, big.schema().FindColumn("mod"), ""};
    edge.right = plan::ColumnRef{1, big.schema().FindColumn("nmod"), ""};
    Intermediate left = all_rows(0);
    Intermediate right = all_rows(1);
    Intermediate serial = HashJoinIntermediates(left, right, {&edge}, rels);
    Intermediate parallel =
        HashJoinIntermediatesParallel(left, right, {&edge}, rels, ctx);
    EXPECT_EQ(parallel.rels, serial.rels);
    EXPECT_EQ(parallel.columns, serial.columns);

    // Composite key (two edges) through the partitioned path.
    plan::JoinEdge second;
    second.left = plan::ColumnRef{0, big.schema().FindColumn("mod"), ""};
    second.right = plan::ColumnRef{1, big.schema().FindColumn("mod"), ""};
    Intermediate serial2 =
        HashJoinIntermediates(left, right, {&edge, &second}, rels);
    Intermediate parallel2 = HashJoinIntermediatesParallel(
        left, right, {&edge, &second}, rels, ctx);
    EXPECT_EQ(parallel2.rels, serial2.rels);
    EXPECT_EQ(parallel2.columns, serial2.columns);

    // Asymmetric sides: small build (serial insert), large probe (morsel
    // probe + parallel gather).
    std::vector<common::RowIdx> few;
    for (common::RowIdx r = 0; r < 100; ++r) few.push_back(r * 3);
    Intermediate small = Intermediate::FromRows(0, std::move(few));
    Intermediate serial3 =
        HashJoinIntermediates(small, right, {&edge}, rels);
    Intermediate parallel3 =
        HashJoinIntermediatesParallel(small, right, {&edge}, rels, ctx);
    EXPECT_EQ(parallel3.rels, serial3.rels);
    EXPECT_EQ(parallel3.columns, serial3.columns);
  }
}

TEST_F(KernelEdgeTest, ParallelKernelsFallBackOnSmallInputs) {
  common::ThreadPool pool(2);
  MorselContext ctx{2, &pool};
  // Below the parallel thresholds the parallel entry points must route to
  // (and exactly reproduce) the serial kernels, batch boundaries included.
  for (int64_t n : {static_cast<int64_t>(0), static_cast<int64_t>(1),
                    static_cast<int64_t>(kKernelBatchSize),
                    static_cast<int64_t>(kKernelBatchSize) + 1}) {
    SCOPED_TRACE(n);
    const storage::Table& t = TableOfSize(n);
    plan::ScanPredicate even = Pred(1, plan::ScanPredicate::Kind::kCompare,
                                    plan::CompareOp::kEq, Value::Int(0));
    EXPECT_EQ(FilterScanParallel(t, {&even}, ctx), FilterScan(t, {&even}));
  }
  JoinFixture f(*catalog_, 1, kKernelBatchSize, "id", "parity");
  Intermediate serial = HashJoinIntermediates(f.AllRows(0), f.AllRows(1),
                                              {&f.edge}, f.rels);
  Intermediate parallel = HashJoinIntermediatesParallel(
      f.AllRows(0), f.AllRows(1), {&f.edge}, f.rels, ctx);
  EXPECT_EQ(parallel.rels, serial.rels);
  EXPECT_EQ(parallel.columns, serial.columns);
  // A disabled context is always serial.
  MorselContext off{1, nullptr};
  EXPECT_EQ(
      FilterScanParallel(f.rels.table(1), {}, off).size(),
      static_cast<size_t>(kKernelBatchSize));
}

}  // namespace
}  // namespace reopt::exec
