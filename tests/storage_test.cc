#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace reopt::storage {
namespace {

using common::DataType;
using common::Value;

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kDouble}});
}

// ---- Column ----------------------------------------------------------------

TEST(ColumnTest, TypedAppendAndRead) {
  Column col(DataType::kInt64);
  col.AppendInt(10);
  col.AppendInt(-3);
  EXPECT_EQ(col.size(), 2);
  EXPECT_EQ(col.GetInt(0), 10);
  EXPECT_EQ(col.GetInt(1), -3);
  EXPECT_TRUE(col.AllValid());
}

TEST(ColumnTest, NullBitmapLazilyMaterialized) {
  Column col(DataType::kString);
  col.AppendString("a");
  EXPECT_TRUE(col.AllValid());
  col.AppendNull();
  EXPECT_FALSE(col.AllValid());
  col.AppendString("b");
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_EQ(col.size(), 3);
}

TEST(ColumnTest, GetValueBoxesCorrectly) {
  Column col(DataType::kDouble);
  col.AppendDouble(1.5);
  col.AppendNull();
  EXPECT_EQ(col.GetValue(0), Value::Real(1.5));
  EXPECT_TRUE(col.GetValue(1).is_null());
}

TEST(ColumnTest, AppendValueDispatchesOnType) {
  Column col(DataType::kInt64);
  col.AppendValue(Value::Int(7));
  col.AppendValue(Value::Null_());
  EXPECT_EQ(col.GetInt(0), 7);
  EXPECT_TRUE(col.IsNull(1));
}

TEST(ColumnTest, BulkAppendsMatchScalarAppends) {
  // Bulk spans after a NULL: the validity bitmap must extend with 1s.
  const int64_t ints[] = {4, 5, 6};
  Column a(DataType::kInt64);
  a.AppendInt(3);
  a.AppendNull();
  a.AppendInts(ints, 3);
  Column b(DataType::kInt64);
  b.AppendInt(3);
  b.AppendNull();
  for (int64_t v : ints) b.AppendInt(v);
  ASSERT_EQ(a.size(), b.size());
  for (common::RowIdx r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a.GetValue(r), b.GetValue(r));
  }

  // All-valid bulk append keeps the bitmap unmaterialized.
  const double doubles[] = {0.5, -1.5};
  Column c(DataType::kDouble);
  c.AppendDoubles(doubles, 2);
  EXPECT_TRUE(c.AllValid());
  EXPECT_EQ(c.GetDouble(1), -1.5);

  // Copying and move-draining string bulk appends agree.
  const std::string strs[] = {"x", "", "y"};
  Column d(DataType::kString);
  d.AppendStrings(strs, 3);
  std::vector<std::string> buf = {"x", "", "y"};
  Column e(DataType::kString);
  e.AppendStrings(std::move(buf));
  ASSERT_EQ(d.size(), 3);
  ASSERT_EQ(e.size(), 3);
  for (common::RowIdx r = 0; r < 3; ++r) {
    EXPECT_EQ(d.GetString(r), e.GetString(r));
  }
}

// ---- Column encodings -------------------------------------------------------

TEST(ColumnTest, DictionaryEncodingRoundTrips) {
  Column col(DataType::kString);
  const char* rows[] = {"pear", "apple", "pear", "", "banana", "apple"};
  std::vector<Value> expected;
  for (const char* s : rows) {
    col.AppendString(s);
    expected.push_back(Value::Str(s));
  }
  col.AppendNull();
  expected.push_back(Value::Null_());

  col.EncodeDictionary();
  EXPECT_EQ(col.encoding(), ColumnEncoding::kDictionary);
  // Sorted unique dictionary: code order == lexicographic order.
  EXPECT_EQ(col.dictionary(),
            (std::vector<std::string>{"", "apple", "banana", "pear"}));
  EXPECT_EQ(col.dict_codes(),
            (std::vector<int32_t>{3, 1, 3, 0, 2, 1, -1}));
  // Boxed reads are unchanged; NULL decodes to the empty string.
  for (common::RowIdx r = 0; r < col.size(); ++r) {
    EXPECT_EQ(col.GetValue(r), expected[static_cast<size_t>(r)]);
  }
  EXPECT_TRUE(col.IsNull(6));
  EXPECT_EQ(col.GetString(6), "");
  // The view decodes through the dictionary; the plain span is gone.
  ColumnView view = col.View();
  EXPECT_EQ(view.strings, nullptr);
  ASSERT_EQ(view.dict_size, 4);
  EXPECT_EQ(view.StringAt(0), "pear");
  EXPECT_EQ(view.StringAt(6), "");
}

TEST(ColumnTest, DictionaryEncodingDegenerateShapes) {
  // Empty column -> empty dictionary.
  Column empty(DataType::kString);
  empty.EncodeDictionary();
  EXPECT_EQ(empty.encoding(), ColumnEncoding::kDictionary);
  EXPECT_TRUE(empty.dictionary().empty());
  // All-NULL column -> empty dictionary, every code -1.
  Column nulls(DataType::kString);
  nulls.AppendNull();
  nulls.AppendNull();
  nulls.EncodeDictionary();
  EXPECT_TRUE(nulls.dictionary().empty());
  EXPECT_EQ(nulls.dict_codes(), (std::vector<int32_t>{-1, -1}));
  EXPECT_EQ(nulls.GetString(0), "");
  EXPECT_TRUE(nulls.IsNull(1));
}

TEST(ColumnTest, PartitionedEncodingBuildsZoneMaps) {
  // 2 full partitions + a 5-row tail; partition 1 is entirely NULL.
  Column col(DataType::kInt64);
  const int64_t n = 2 * kPartitionRows + 5;
  for (int64_t i = 0; i < n; ++i) {
    if (i / kPartitionRows == 1) {
      col.AppendNull();
    } else {
      col.AppendInt(i);
    }
  }
  col.EncodePartitioned();
  EXPECT_EQ(col.encoding(), ColumnEncoding::kPartitioned);
  ASSERT_EQ(col.zones().size(), 3u);
  const ZoneMap& z0 = col.zones()[0];
  EXPECT_TRUE(z0.has_values);
  EXPECT_TRUE(z0.skippable);
  EXPECT_EQ(z0.min_int, 0);
  EXPECT_EQ(z0.max_int, kPartitionRows - 1);
  EXPECT_EQ(z0.min_double, 0.0);
  EXPECT_EQ(z0.max_double, static_cast<double>(kPartitionRows - 1));
  EXPECT_EQ(z0.row_count, kPartitionRows);
  EXPECT_EQ(z0.null_count, 0);
  const ZoneMap& z1 = col.zones()[1];
  EXPECT_FALSE(z1.has_values);
  EXPECT_TRUE(z1.AllNull());
  EXPECT_EQ(z1.null_count, kPartitionRows);
  const ZoneMap& z2 = col.zones()[2];
  EXPECT_EQ(z2.row_count, 5);
  EXPECT_EQ(z2.min_int, 2 * kPartitionRows);
  EXPECT_EQ(z2.max_int, n - 1);
  // Plain spans remain valid: partitioning is zone maps only.
  EXPECT_EQ(col.GetInt(0), 0);
  EXPECT_EQ(static_cast<int64_t>(col.ints().size()), n);
}

TEST(ColumnTest, NaNDisablesZoneMapSkipping) {
  Column col(DataType::kDouble);
  for (int64_t i = 0; i < kPartitionRows; ++i) {
    col.AppendDouble(i == 17 ? std::numeric_limits<double>::quiet_NaN()
                             : static_cast<double>(i));
  }
  col.AppendDouble(1.0);  // second partition, clean
  col.EncodePartitioned();
  ASSERT_EQ(col.zones().size(), 2u);
  EXPECT_FALSE(col.zones()[0].skippable);
  EXPECT_TRUE(col.zones()[1].skippable);
}

TEST(ColumnTest, DictionaryWorthwhileHeuristic) {
  // Too small: never worthwhile.
  Column small(DataType::kString);
  small.AppendString("a");
  EXPECT_FALSE(small.DictionaryWorthwhile());
  // Large with few distinct values: worthwhile.
  Column low_ndv(DataType::kString);
  for (int64_t i = 0; i < kPartitionRows; ++i) {
    low_ndv.AppendString(i % 2 == 0 ? "x" : "y");
  }
  EXPECT_TRUE(low_ndv.DictionaryWorthwhile());
  // Large but nearly all-distinct: not worthwhile.
  Column high_ndv(DataType::kString);
  for (int64_t i = 0; i < kPartitionRows; ++i) {
    high_ndv.AppendString("s" + std::to_string(i));
  }
  EXPECT_FALSE(high_ndv.DictionaryWorthwhile());
}

TEST(ColumnDeathTest, EncodedColumnsAreFrozen) {
  Column dict(DataType::kString);
  dict.AppendString("a");
  dict.EncodeDictionary();
  EXPECT_DEATH(dict.AppendString("b"), "");
  EXPECT_DEATH(dict.strings(), "plain string span");
  Column part(DataType::kInt64);
  part.AppendInt(1);
  part.EncodePartitioned();
  EXPECT_DEATH(part.AppendInt(2), "");
}

#ifndef NDEBUG
TEST(ColumnDeathTest, StaleViewAbortsInDebugBuilds) {
  // An append after View() invalidates the raw spans; the debug version
  // check turns any later use of the view into an abort instead of a read
  // of possibly-freed memory. (Release builds compile the check away, so
  // this test is debug-only — executing the stale read there would be
  // genuine UB.)
  Column col(DataType::kInt64);
  col.AppendInt(1);
  ColumnView view = col.View();
  EXPECT_FALSE(view.IsNull(0));  // fresh: fine
  col.AppendInt(2);
  EXPECT_DEATH(view.IsNull(0), "stale ColumnView");
  EXPECT_DEATH(view.Ints(), "stale ColumnView");
  // Re-encoding is a mutation too.
  Column scol(DataType::kString);
  scol.AppendString("a");
  ColumnView sview = scol.View();
  scol.EncodeDictionary();
  EXPECT_DEATH(sview.Strings(), "stale ColumnView");
}
#endif

// ---- Schema -----------------------------------------------------------------

TEST(SchemaTest, FindColumn) {
  Schema s = TestSchema();
  EXPECT_EQ(s.FindColumn("name"), 1);
  EXPECT_EQ(s.FindColumn("missing"), common::kInvalidColumnIdx);
  EXPECT_EQ(s.num_columns(), 3);
}

TEST(SchemaTest, AddColumnReturnsIndex) {
  Schema s;
  EXPECT_EQ(s.AddColumn({"a", DataType::kInt64}), 0);
  EXPECT_EQ(s.AddColumn({"b", DataType::kString}), 1);
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TestSchema().ToString(),
            "id:INT64, name:STRING, score:DOUBLE");
}

// ---- Table ------------------------------------------------------------------

TEST(TableTest, AppendAndGetRow) {
  Table t("t", TestSchema());
  t.AppendRow({Value::Int(1), Value::Str("alpha"), Value::Real(0.5)});
  t.AppendRow({Value::Int(2), Value::Null_(), Value::Real(1.5)});
  EXPECT_EQ(t.num_rows(), 2);
  std::vector<Value> row = t.GetRow(1);
  EXPECT_EQ(row[0], Value::Int(2));
  EXPECT_TRUE(row[1].is_null());
}

TEST(TableTest, SyncRowCountFromColumns) {
  Table t("t", TestSchema());
  t.mutable_column(0).AppendInt(1);
  t.mutable_column(1).AppendString("x");
  t.mutable_column(2).AppendDouble(2.0);
  EXPECT_EQ(t.num_rows(), 0);  // direct appends bypass the row counter
  t.SyncRowCountFromColumns();
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(TableTest, ApplyEncodingFollowsPolicy) {
  auto build = [] {
    auto t = std::make_unique<Table>(
        "t", Schema({{"id", DataType::kInt64},
                     {"tag", DataType::kString},
                     {"score", DataType::kDouble}}));
    // Enough rows for kAuto to partition numerics (>= 4 partitions) and a
    // low-cardinality tag column that is clearly dictionary-worthwhile.
    for (int64_t i = 0; i < 4 * kPartitionRows; ++i) {
      t->AppendRow({Value::Int(i), Value::Str(i % 2 == 0 ? "even" : "odd"),
                    Value::Real(static_cast<double>(i))});
    }
    return t;
  };
  auto plain = build();
  plain->ApplyEncoding(EncodingPolicy::kForcePlain);
  for (common::ColumnIdx c = 0; c < 3; ++c) {
    EXPECT_EQ(plain->column(c).encoding(), ColumnEncoding::kPlain);
  }
  auto dict = build();
  dict->ApplyEncoding(EncodingPolicy::kForceDictionary);
  EXPECT_EQ(dict->column(0).encoding(), ColumnEncoding::kPlain);
  EXPECT_EQ(dict->column(1).encoding(), ColumnEncoding::kDictionary);
  auto part = build();
  part->ApplyEncoding(EncodingPolicy::kForcePartitioned);
  EXPECT_EQ(part->column(0).encoding(), ColumnEncoding::kPartitioned);
  EXPECT_EQ(part->column(1).encoding(), ColumnEncoding::kPlain);
  EXPECT_EQ(part->column(2).encoding(), ColumnEncoding::kPartitioned);
  auto autop = build();
  autop->ApplyEncoding(EncodingPolicy::kAuto);
  EXPECT_EQ(autop->column(0).encoding(), ColumnEncoding::kPartitioned);
  EXPECT_EQ(autop->column(1).encoding(), ColumnEncoding::kDictionary);
  EXPECT_EQ(autop->column(2).encoding(), ColumnEncoding::kPartitioned);
  // Idempotent: already-encoded columns are left alone.
  autop->ApplyEncoding(EncodingPolicy::kAuto);
  EXPECT_EQ(autop->column(1).encoding(), ColumnEncoding::kDictionary);
}

TEST(TableTest, CreateIndexOnlyOnInt64) {
  Table t("t", TestSchema());
  EXPECT_TRUE(t.CreateIndex(0).ok());
  EXPECT_FALSE(t.CreateIndex(1).ok());  // string column
  EXPECT_FALSE(t.CreateIndex(9).ok());  // out of range
  EXPECT_NE(t.FindIndex(0), nullptr);
  EXPECT_EQ(t.FindIndex(1), nullptr);
}

TEST(TableTest, CreateIndexIdempotent) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex(0).ok());
  ASSERT_TRUE(t.CreateIndex(0).ok());
  EXPECT_EQ(t.indexes().size(), 1u);
}

// ---- HashIndex ---------------------------------------------------------------

TEST(HashIndexTest, LookupFindsAllDuplicates) {
  Table t("t", Schema({{"k", DataType::kInt64}}));
  for (int64_t v : {5, 3, 5, 5, 7}) t.AppendRow({Value::Int(v)});
  ASSERT_TRUE(t.CreateIndex(0).ok());
  const HashIndex* idx = t.FindIndex(0);
  EXPECT_EQ(idx->Lookup(5).size(), 3u);
  EXPECT_EQ(idx->Lookup(3).size(), 1u);
  EXPECT_TRUE(idx->Lookup(99).empty());
  EXPECT_EQ(idx->num_keys(), 3);
  EXPECT_EQ(idx->num_entries(), 5);
}

TEST(HashIndexTest, NullKeysNotIndexed) {
  Table t("t", Schema({{"k", DataType::kInt64}}));
  t.AppendRow({Value::Int(1)});
  t.AppendRow({Value::Null_()});
  ASSERT_TRUE(t.CreateIndex(0).ok());
  EXPECT_EQ(t.FindIndex(0)->num_entries(), 1);
}

// ---- Catalog -------------------------------------------------------------------

TEST(CatalogTest, CreateFindDrop) {
  Catalog cat;
  auto created = cat.CreateTable("t", TestSchema());
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(cat.FindTable("t"), created.value());
  EXPECT_TRUE(cat.DropTable("t").ok());
  EXPECT_EQ(cat.FindTable("t"), nullptr);
  EXPECT_FALSE(cat.DropTable("t").ok());
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TestSchema()).ok());
  EXPECT_FALSE(cat.CreateTable("t", TestSchema()).ok());
}

TEST(CatalogTest, TempTablesSeparatelyDroppable) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("base", TestSchema()).ok());
  ASSERT_TRUE(cat.CreateTable("tmp1", TestSchema(), /*temporary=*/true).ok());
  ASSERT_TRUE(cat.CreateTable("tmp2", TestSchema(), /*temporary=*/true).ok());
  EXPECT_TRUE(cat.IsTemporary("tmp1"));
  EXPECT_FALSE(cat.IsTemporary("base"));
  EXPECT_EQ(cat.TableNames(/*temp_only=*/true).size(), 2u);
  cat.DropTempTables();
  EXPECT_EQ(cat.FindTable("tmp1"), nullptr);
  EXPECT_NE(cat.FindTable("base"), nullptr);
}

TEST(CatalogTest, NextTempNameUnique) {
  Catalog cat;
  std::string a = cat.NextTempName();
  std::string b = cat.NextTempName();
  EXPECT_NE(a, b);
}

TEST(CatalogTest, NextTempNameCarriesNamespace) {
  Catalog cat;
  EXPECT_EQ(cat.NextTempName(), "reopt_temp_1");
  EXPECT_EQ(cat.NextTempName("w3"), "reopt_temp_w3_2");
  EXPECT_EQ(cat.NextTempName(), "reopt_temp_3");
}

TEST(CatalogTest, ConcurrentTempNamesNeverCollide) {
  // Two (or more) concurrent runners drawing temp names — with and without
  // per-worker namespaces — must never produce the same name.
  Catalog cat;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<std::string>> names(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cat, &names, t] {
      std::string ns = t % 2 == 0 ? "" : "w" + std::to_string(t);
      names[static_cast<size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        names[static_cast<size_t>(t)].push_back(cat.NextTempName(ns));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::set<std::string> unique;
  for (const auto& per_thread : names) {
    for (const std::string& name : per_thread) unique.insert(name);
  }
  EXPECT_EQ(unique.size(),
            static_cast<size_t>(kThreads) * static_cast<size_t>(kPerThread));
}

TEST(CatalogTest, ConcurrentTempDdlWithBaseLookups) {
  // Workers create/drop namespaced temp tables while others resolve a base
  // table — the parallel re-optimization access pattern.
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("base", TestSchema()).ok());
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cat, &failures, t] {
      for (int i = 0; i < kRounds; ++i) {
        std::string name = cat.NextTempName("w" + std::to_string(t));
        if (!cat.CreateTable(name, TestSchema(), /*temporary=*/true).ok() ||
            cat.FindTable("base") == nullptr ||
            cat.FindTable(name) == nullptr || !cat.DropTable(name).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(cat.TableNames(/*temp_only=*/true).empty());
  EXPECT_NE(cat.FindTable("base"), nullptr);
}

TEST(CatalogTest, AddPrebuiltTable) {
  Catalog cat;
  auto table = std::make_unique<Table>("pre", TestSchema());
  ASSERT_TRUE(cat.AddTable(std::move(table)).ok());
  EXPECT_NE(cat.FindTable("pre"), nullptr);
}

}  // namespace
}  // namespace reopt::storage
