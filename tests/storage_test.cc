#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace reopt::storage {
namespace {

using common::DataType;
using common::Value;

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kDouble}});
}

// ---- Column ----------------------------------------------------------------

TEST(ColumnTest, TypedAppendAndRead) {
  Column col(DataType::kInt64);
  col.AppendInt(10);
  col.AppendInt(-3);
  EXPECT_EQ(col.size(), 2);
  EXPECT_EQ(col.GetInt(0), 10);
  EXPECT_EQ(col.GetInt(1), -3);
  EXPECT_TRUE(col.AllValid());
}

TEST(ColumnTest, NullBitmapLazilyMaterialized) {
  Column col(DataType::kString);
  col.AppendString("a");
  EXPECT_TRUE(col.AllValid());
  col.AppendNull();
  EXPECT_FALSE(col.AllValid());
  col.AppendString("b");
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_EQ(col.size(), 3);
}

TEST(ColumnTest, GetValueBoxesCorrectly) {
  Column col(DataType::kDouble);
  col.AppendDouble(1.5);
  col.AppendNull();
  EXPECT_EQ(col.GetValue(0), Value::Real(1.5));
  EXPECT_TRUE(col.GetValue(1).is_null());
}

TEST(ColumnTest, AppendValueDispatchesOnType) {
  Column col(DataType::kInt64);
  col.AppendValue(Value::Int(7));
  col.AppendValue(Value::Null_());
  EXPECT_EQ(col.GetInt(0), 7);
  EXPECT_TRUE(col.IsNull(1));
}

// ---- Schema -----------------------------------------------------------------

TEST(SchemaTest, FindColumn) {
  Schema s = TestSchema();
  EXPECT_EQ(s.FindColumn("name"), 1);
  EXPECT_EQ(s.FindColumn("missing"), common::kInvalidColumnIdx);
  EXPECT_EQ(s.num_columns(), 3);
}

TEST(SchemaTest, AddColumnReturnsIndex) {
  Schema s;
  EXPECT_EQ(s.AddColumn({"a", DataType::kInt64}), 0);
  EXPECT_EQ(s.AddColumn({"b", DataType::kString}), 1);
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TestSchema().ToString(),
            "id:INT64, name:STRING, score:DOUBLE");
}

// ---- Table ------------------------------------------------------------------

TEST(TableTest, AppendAndGetRow) {
  Table t("t", TestSchema());
  t.AppendRow({Value::Int(1), Value::Str("alpha"), Value::Real(0.5)});
  t.AppendRow({Value::Int(2), Value::Null_(), Value::Real(1.5)});
  EXPECT_EQ(t.num_rows(), 2);
  std::vector<Value> row = t.GetRow(1);
  EXPECT_EQ(row[0], Value::Int(2));
  EXPECT_TRUE(row[1].is_null());
}

TEST(TableTest, SyncRowCountFromColumns) {
  Table t("t", TestSchema());
  t.mutable_column(0).AppendInt(1);
  t.mutable_column(1).AppendString("x");
  t.mutable_column(2).AppendDouble(2.0);
  EXPECT_EQ(t.num_rows(), 0);  // direct appends bypass the row counter
  t.SyncRowCountFromColumns();
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(TableTest, CreateIndexOnlyOnInt64) {
  Table t("t", TestSchema());
  EXPECT_TRUE(t.CreateIndex(0).ok());
  EXPECT_FALSE(t.CreateIndex(1).ok());  // string column
  EXPECT_FALSE(t.CreateIndex(9).ok());  // out of range
  EXPECT_NE(t.FindIndex(0), nullptr);
  EXPECT_EQ(t.FindIndex(1), nullptr);
}

TEST(TableTest, CreateIndexIdempotent) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex(0).ok());
  ASSERT_TRUE(t.CreateIndex(0).ok());
  EXPECT_EQ(t.indexes().size(), 1u);
}

// ---- HashIndex ---------------------------------------------------------------

TEST(HashIndexTest, LookupFindsAllDuplicates) {
  Table t("t", Schema({{"k", DataType::kInt64}}));
  for (int64_t v : {5, 3, 5, 5, 7}) t.AppendRow({Value::Int(v)});
  ASSERT_TRUE(t.CreateIndex(0).ok());
  const HashIndex* idx = t.FindIndex(0);
  EXPECT_EQ(idx->Lookup(5).size(), 3u);
  EXPECT_EQ(idx->Lookup(3).size(), 1u);
  EXPECT_TRUE(idx->Lookup(99).empty());
  EXPECT_EQ(idx->num_keys(), 3);
  EXPECT_EQ(idx->num_entries(), 5);
}

TEST(HashIndexTest, NullKeysNotIndexed) {
  Table t("t", Schema({{"k", DataType::kInt64}}));
  t.AppendRow({Value::Int(1)});
  t.AppendRow({Value::Null_()});
  ASSERT_TRUE(t.CreateIndex(0).ok());
  EXPECT_EQ(t.FindIndex(0)->num_entries(), 1);
}

// ---- Catalog -------------------------------------------------------------------

TEST(CatalogTest, CreateFindDrop) {
  Catalog cat;
  auto created = cat.CreateTable("t", TestSchema());
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(cat.FindTable("t"), created.value());
  EXPECT_TRUE(cat.DropTable("t").ok());
  EXPECT_EQ(cat.FindTable("t"), nullptr);
  EXPECT_FALSE(cat.DropTable("t").ok());
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TestSchema()).ok());
  EXPECT_FALSE(cat.CreateTable("t", TestSchema()).ok());
}

TEST(CatalogTest, TempTablesSeparatelyDroppable) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("base", TestSchema()).ok());
  ASSERT_TRUE(cat.CreateTable("tmp1", TestSchema(), /*temporary=*/true).ok());
  ASSERT_TRUE(cat.CreateTable("tmp2", TestSchema(), /*temporary=*/true).ok());
  EXPECT_TRUE(cat.IsTemporary("tmp1"));
  EXPECT_FALSE(cat.IsTemporary("base"));
  EXPECT_EQ(cat.TableNames(/*temp_only=*/true).size(), 2u);
  cat.DropTempTables();
  EXPECT_EQ(cat.FindTable("tmp1"), nullptr);
  EXPECT_NE(cat.FindTable("base"), nullptr);
}

TEST(CatalogTest, NextTempNameUnique) {
  Catalog cat;
  std::string a = cat.NextTempName();
  std::string b = cat.NextTempName();
  EXPECT_NE(a, b);
}

TEST(CatalogTest, NextTempNameCarriesNamespace) {
  Catalog cat;
  EXPECT_EQ(cat.NextTempName(), "reopt_temp_1");
  EXPECT_EQ(cat.NextTempName("w3"), "reopt_temp_w3_2");
  EXPECT_EQ(cat.NextTempName(), "reopt_temp_3");
}

TEST(CatalogTest, ConcurrentTempNamesNeverCollide) {
  // Two (or more) concurrent runners drawing temp names — with and without
  // per-worker namespaces — must never produce the same name.
  Catalog cat;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<std::string>> names(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cat, &names, t] {
      std::string ns = t % 2 == 0 ? "" : "w" + std::to_string(t);
      names[static_cast<size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        names[static_cast<size_t>(t)].push_back(cat.NextTempName(ns));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::set<std::string> unique;
  for (const auto& per_thread : names) {
    for (const std::string& name : per_thread) unique.insert(name);
  }
  EXPECT_EQ(unique.size(),
            static_cast<size_t>(kThreads) * static_cast<size_t>(kPerThread));
}

TEST(CatalogTest, ConcurrentTempDdlWithBaseLookups) {
  // Workers create/drop namespaced temp tables while others resolve a base
  // table — the parallel re-optimization access pattern.
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("base", TestSchema()).ok());
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cat, &failures, t] {
      for (int i = 0; i < kRounds; ++i) {
        std::string name = cat.NextTempName("w" + std::to_string(t));
        if (!cat.CreateTable(name, TestSchema(), /*temporary=*/true).ok() ||
            cat.FindTable("base") == nullptr ||
            cat.FindTable(name) == nullptr || !cat.DropTable(name).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(cat.TableNames(/*temp_only=*/true).empty());
  EXPECT_NE(cat.FindTable("base"), nullptr);
}

TEST(CatalogTest, AddPrebuiltTable) {
  Catalog cat;
  auto table = std::make_unique<Table>("pre", TestSchema());
  ASSERT_TRUE(cat.AddTable(std::move(table)).ok());
  EXPECT_NE(cat.FindTable("pre"), nullptr);
}

}  // namespace
}  // namespace reopt::storage
