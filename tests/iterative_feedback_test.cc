#include <gtest/gtest.h>

#include "reopt/iterative_feedback.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::reoptimizer {
namespace {

using testing::SmallImdb;

IterativeFeedbackResult RunOn(const plan::QuerySpec* query,
                              double threshold = 32.0,
                              int max_iters = 64) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto session = QuerySession::Create(query, &db->catalog, &db->stats);
  EXPECT_TRUE(session.ok());
  optimizer::CostParams params;
  IterativeFeedbackOptions options;
  options.relative_threshold = threshold;
  options.max_iterations = max_iters;
  auto result = RunIterativeFeedback(session.value().get(), &db->catalog,
                                     &db->stats, params, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result.value());
}

TEST(IterativeFeedbackTest, ConvergesOnTrapQueries) {
  for (auto make : {workload::MakeQuery16b, workload::MakeQuery25c,
                    workload::MakeQuery30a}) {
    auto query = make(SmallImdb()->catalog);
    IterativeFeedbackResult r = RunOn(query.get());
    EXPECT_TRUE(r.converged) << query->name;
    EXPECT_GE(r.iterations.size(), 2u) << query->name
        << " — trap queries need at least one correction";
  }
}

TEST(IterativeFeedbackTest, InjectionCountMonotonicallyGrows) {
  auto query = workload::MakeQuery25c(SmallImdb()->catalog);
  IterativeFeedbackResult r = RunOn(query.get());
  int64_t prev = 0;
  for (size_t i = 0; i + 1 < r.iterations.size(); ++i) {
    EXPECT_GT(r.iterations[i].injected_after, prev);
    prev = r.iterations[i].injected_after;
  }
}

TEST(IterativeFeedbackTest, CorrectedQErrorsAboveThreshold) {
  auto query = workload::MakeQuery16b(SmallImdb()->catalog);
  IterativeFeedbackResult r = RunOn(query.get());
  for (size_t i = 0; i + 1 < r.iterations.size(); ++i) {
    EXPECT_GT(r.iterations[i].corrected_qerror, 32.0);
  }
  // The converged final iteration corrected nothing.
  EXPECT_DOUBLE_EQ(r.iterations.back().corrected_qerror, 0.0);
}

TEST(IterativeFeedbackTest, FinalIterationNearPerfect) {
  // Once every operator's estimate is within the threshold, execution
  // time should be within a small factor of the perfect plan's.
  auto query = workload::MakeQuery25c(SmallImdb()->catalog);
  IterativeFeedbackResult r = RunOn(query.get());
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.perfect_exec_seconds, 0.0);
  EXPECT_LE(r.iterations.back().exec_seconds,
            10.0 * r.perfect_exec_seconds);
}

TEST(IterativeFeedbackTest, BenignQueryConvergesImmediately) {
  imdb::ImdbDatabase* db = SmallImdb();
  workload::QueryBuilder* unused = nullptr;
  (void)unused;
  auto query = [&]() {
    workload::QueryBuilder qb(&db->catalog, "benign_fb");
    int t = qb.AddRelation("title", "t");
    int mk = qb.AddRelation("movie_keyword", "mk");
    qb.Join(t, "id", mk, "movie_id")
        .FilterBetween(t, "production_year", common::Value::Int(1960),
                       common::Value::Int(1990))
        .OutputMin(t, "title", "m");
    return qb.Build();
  }();
  IterativeFeedbackResult r = RunOn(query.get());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations.size(), 1u);
  EXPECT_EQ(r.iterations[0].injected_after, 0);
}

TEST(IterativeFeedbackTest, RespectsMaxIterations) {
  auto query = workload::MakeQuery25c(SmallImdb()->catalog);
  IterativeFeedbackResult r = RunOn(query.get(), /*threshold=*/1.5,
                                    /*max_iters=*/3);
  EXPECT_LE(r.iterations.size(), 3u);
}

}  // namespace
}  // namespace reopt::reoptimizer
