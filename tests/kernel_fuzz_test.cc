// Property-based fuzzing of the vectorized kernel: seeded random QuerySpecs
// (random join subsets of the synthetic IMDB schema with random filters)
// are cross-checked three ways — the vectorized kernel, the retained scalar
// reference kernel, and the TrueCardinalityOracle's factorized counting —
// plus a planned end-to-end execution under both executor kernel modes.
// Each seed is a separate parameterized test registered in ctest, so a
// failure names the exact seed that reproduces it.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exec/executor.h"
#include "exec/kernel.h"
#include "exec/kernel_reference.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/planner.h"
#include "optimizer/query_context.h"
#include "optimizer/true_cardinality.h"
#include "plan/physical_plan.h"
#include "tests/test_util.h"
#include "workload/query_builder.h"

namespace reopt {
namespace {

using common::Value;
using testing::SmallImdb;

/// A schema edge the generator can extend a random query along:
/// from_table.from_col = new_table.new_col.
struct Expansion {
  const char* from_table;
  const char* from_col;
  const char* new_table;
  const char* new_col;
};

constexpr Expansion kExpansions[] = {
    {"title", "id", "movie_keyword", "movie_id"},
    {"movie_keyword", "keyword_id", "keyword", "id"},
    {"title", "id", "cast_info", "movie_id"},
    {"cast_info", "person_id", "name", "id"},
    {"title", "id", "movie_companies", "movie_id"},
    {"movie_companies", "company_id", "company_name", "id"},
    {"title", "id", "movie_info", "movie_id"},
    {"title", "kind_id", "kind_type", "id"},
};

/// Adds 0-2 random filters on relation `rel` of table `table`.
void AddRandomFilters(workload::QueryBuilder* qb, int rel,
                      const std::string& table, common::Rng* rng) {
  if (table == "title") {
    if (rng->Bernoulli(0.6)) {
      int64_t a = 1930 + rng->UniformInt(0, 89);
      int64_t b = 1930 + rng->UniformInt(0, 89);
      if (rng->Bernoulli(0.5)) {
        qb->FilterBetween(rel, "production_year",
                          Value::Int(std::min(a, b)),
                          Value::Int(std::max(a, b)));
      } else {
        static const plan::CompareOp kOps[] = {
            plan::CompareOp::kEq, plan::CompareOp::kNe, plan::CompareOp::kLt,
            plan::CompareOp::kLe, plan::CompareOp::kGt, plan::CompareOp::kGe};
        qb->FilterCompare(rel, "production_year",
                          kOps[rng->UniformInt(0, 5)], Value::Int(a));
      }
    }
    if (rng->Bernoulli(0.3)) {
      static const char* kPatterns[] = {"Saga%", "The Picture%", "Movie%",
                                        "%Part%"};
      qb->FilterLike(rel, "title", kPatterns[rng->UniformInt(0, 3)],
                     /*negated=*/rng->Bernoulli(0.3));
    }
  } else if (table == "name") {
    if (rng->Bernoulli(0.5)) {
      if (rng->Bernoulli(0.5)) {
        qb->FilterEq(rel, "gender", Value::Str(rng->Bernoulli(0.5) ? "m" : "f"));
      } else {
        qb->FilterIsNotNull(rel, "gender");
      }
    }
  } else if (table == "cast_info") {
    if (rng->Bernoulli(0.4)) {
      if (rng->Bernoulli(0.5)) {
        qb->FilterCompare(rel, "role_id", plan::CompareOp::kLe,
                          Value::Int(rng->UniformInt(1, 12)));
      } else {
        qb->FilterIn(rel, "role_id",
                     {Value::Int(1), Value::Int(2),
                      Value::Int(rng->UniformInt(3, 12))});
      }
    }
  } else if (table == "movie_companies") {
    if (rng->Bernoulli(0.4)) {
      qb->FilterIn(rel, "company_type_id", {Value::Int(1), Value::Int(2)});
    }
  } else if (table == "movie_info") {
    if (rng->Bernoulli(0.3)) {
      qb->FilterCompare(rel, "info_type_id", plan::CompareOp::kEq,
                        Value::Int(rng->UniformInt(4, 6)));
    }
  } else if (table == "keyword") {
    if (rng->Bernoulli(0.3)) {
      qb->FilterLike(rel, "keyword", "%a%", /*negated=*/false);
    }
  }
}

/// Builds one random tree-shaped query of 2-5 relations rooted at title.
std::unique_ptr<plan::QuerySpec> RandomQuery(const storage::Catalog& catalog,
                                             common::Rng* rng, int index) {
  workload::QueryBuilder qb(&catalog, "fuzz_q" + std::to_string(index));
  struct Bound {
    std::string table;
    int rel;
  };
  std::vector<Bound> bound;
  bound.push_back(Bound{"title", qb.AddRelation("title", "t")});
  std::map<std::string, int> used = {{"title", 1}};

  int target = static_cast<int>(rng->UniformInt(2, 5));
  while (static_cast<int>(bound.size()) < target) {
    std::vector<std::pair<size_t, const Expansion*>> candidates;
    for (size_t i = 0; i < bound.size(); ++i) {
      for (const Expansion& e : kExpansions) {
        if (bound[i].table == e.from_table && used[e.new_table] == 0) {
          candidates.emplace_back(i, &e);
        }
      }
    }
    if (candidates.empty()) break;
    const auto& [from, e] = candidates[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    int rel = qb.AddRelation(e->new_table, e->new_table);
    qb.Join(bound[from].rel, e->from_col, rel, e->new_col);
    bound.push_back(Bound{e->new_table, rel});
    used[e->new_table] = 1;
  }
  for (const Bound& b : bound) {
    AddRandomFilters(&qb, b.rel, b.table, rng);
  }
  qb.OutputMin(0, "title", "min_title");
  qb.OutputMin(0, "production_year", "min_year");
  return qb.Build();
}

class KernelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelFuzzTest, RandomQueriesAgreeAcrossKernelsAndOracle) {
  imdb::ImdbDatabase* db = SmallImdb();
  common::Rng rng(GetParam());
  optimizer::CostParams params;
  exec::Executor vec_exec(&db->catalog, &db->stats, params);
  exec::Executor ref_exec(&db->catalog, &db->stats, params);
  ref_exec.set_kernel_mode(exec::KernelMode::kReference);

  constexpr int kQueriesPerSeed = 6;
  for (int i = 0; i < kQueriesPerSeed; ++i) {
    std::unique_ptr<plan::QuerySpec> query =
        RandomQuery(db->catalog, &rng, i);
    SCOPED_TRACE(query->ToString());
    exec::BoundRelations rels = exec::BindRelations(*query, db->catalog);
    plan::RelSet all = query->AllRelations();

    // 1. Vectorized kernel vs retained scalar reference kernel.
    double vec_count = exec::ExactJoinCount(*query, all, rels);
    double ref_count = exec::reference::ExactJoinCount(*query, all, rels);
    EXPECT_DOUBLE_EQ(vec_count, ref_count);

    // 2. Both vs the factorized true-cardinality oracle.
    auto ctx_result =
        optimizer::QueryContext::Bind(query.get(), &db->catalog, &db->stats);
    ASSERT_TRUE(ctx_result.ok());
    auto ctx = std::move(ctx_result.value());
    optimizer::TrueCardinalityOracle oracle(ctx.get());
    EXPECT_DOUBLE_EQ(oracle.True(all), vec_count);

    // 3. End-to-end planned execution under both executor kernel modes.
    optimizer::EstimatorModel model(ctx.get());
    optimizer::Planner planner(ctx.get(), &model, params);
    auto planned = planner.Plan();
    ASSERT_TRUE(planned.ok());
    plan::PlanNodePtr vec_plan = std::move(planned.value().root);
    plan::PlanNodePtr ref_plan = plan::ClonePlan(*vec_plan);
    auto vec_result = vec_exec.Execute(*query, vec_plan.get());
    auto ref_result = ref_exec.Execute(*query, ref_plan.get());
    ASSERT_TRUE(vec_result.ok());
    ASSERT_TRUE(ref_result.ok());
    EXPECT_EQ(static_cast<double>(vec_result.value().raw_rows), vec_count);
    EXPECT_EQ(vec_result.value().raw_rows, ref_result.value().raw_rows);
    EXPECT_EQ(vec_result.value().cost_units, ref_result.value().cost_units);
    ASSERT_EQ(vec_result.value().aggregates.size(), 2u);
    ASSERT_EQ(ref_result.value().aggregates.size(), 2u);
    for (size_t a = 0; a < 2; ++a) {
      const Value& va = vec_result.value().aggregates[a];
      const Value& ra = ref_result.value().aggregates[a];
      EXPECT_EQ(va.is_null(), ra.is_null());
      if (!va.is_null() && !ra.is_null()) {
        EXPECT_EQ(va, ra);
      }
    }
    std::vector<std::pair<double, double>> vec_actuals, ref_actuals;
    vec_plan->PostOrderConst([&](const plan::PlanNode* n) {
      vec_actuals.emplace_back(n->actual_rows, n->charged_cost);
    });
    ref_plan->PostOrderConst([&](const plan::PlanNode* n) {
      ref_actuals.emplace_back(n->actual_rows, n->charged_cost);
    });
    EXPECT_EQ(vec_actuals, ref_actuals);
  }
}

// Fixed seeds, each its own ctest entry: a failure report names the seed,
// and `--gtest_filter=Seeds/KernelFuzzTest.*/<n>` reproduces it exactly.
INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzzTest,
                         ::testing::Values(20190319ull, 42ull, 271828ull,
                                           314159ull, 1618033ull, 602214ull,
                                           1729ull, 65537ull));

}  // namespace
}  // namespace reopt
