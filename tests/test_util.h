// Shared test helpers: a lazily-built, process-wide small IMDB database and
// a naive reference join implementation used by property tests.
#ifndef REOPT_TESTS_TEST_UTIL_H_
#define REOPT_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "exec/intermediate.h"
#include "exec/kernel.h"
#include "imdb/imdb.h"
#include "plan/query_spec.h"

namespace reopt::testing {

/// A small (scale 0.05) deterministic IMDB database shared by all tests in
/// one binary. Built once.
inline imdb::ImdbDatabase* SmallImdb() {
  static imdb::ImdbDatabase* db = [] {
    imdb::ImdbOptions options;
    options.scale = 0.05;
    return imdb::BuildImdbDatabase(options).release();
  }();
  return db;
}

/// A slightly larger database for integration tests (scale 0.15).
inline imdb::ImdbDatabase* MediumImdb() {
  static imdb::ImdbDatabase* db = [] {
    imdb::ImdbOptions options;
    options.scale = 0.15;
    return imdb::BuildImdbDatabase(options).release();
  }();
  return db;
}

/// Reference equi-join: a genuinely quadratic nested loop over two
/// intermediates, used to validate the hash-join kernel.
inline exec::Intermediate NaiveJoin(
    const exec::Intermediate& left, const exec::Intermediate& right,
    const std::vector<const plan::JoinEdge*>& edges,
    const exec::BoundRelations& rels) {
  exec::Intermediate out;
  out.rels = left.rels;
  out.rels.insert(out.rels.end(), right.rels.begin(), right.rels.end());
  out.columns.resize(out.rels.size());
  for (int64_t l = 0; l < left.size(); ++l) {
    for (int64_t r = 0; r < right.size(); ++r) {
      bool match = true;
      for (const plan::JoinEdge* e : edges) {
        const exec::Intermediate& ls =
            left.FindRel(e->left.rel) >= 0 ? left : right;
        const exec::Intermediate& rs =
            right.FindRel(e->right.rel) >= 0 ? right : left;
        int64_t lt = (&ls == &left) ? l : r;
        int64_t rt = (&rs == &right) ? r : l;
        const storage::Column& lc =
            rels.table(e->left.rel).column(e->left.col);
        const storage::Column& rc =
            rels.table(e->right.rel).column(e->right.col);
        common::RowIdx lrow = ls.RowOf(e->left.rel, lt);
        common::RowIdx rrow = rs.RowOf(e->right.rel, rt);
        if (lc.IsNull(lrow) || rc.IsNull(rrow) ||
            lc.GetInt(lrow) != rc.GetInt(rrow)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      size_t c = 0;
      for (; c < left.columns.size(); ++c) {
        out.columns[c].push_back(left.columns[c][static_cast<size_t>(l)]);
      }
      for (size_t p = 0; p < right.columns.size(); ++p, ++c) {
        out.columns[c].push_back(right.columns[p][static_cast<size_t>(r)]);
      }
    }
  }
  return out;
}

}  // namespace reopt::testing

#endif  // REOPT_TESTS_TEST_UTIL_H_
