// Concurrency stress for the shared caches under the service layer
// (tsan-labelled): 8 threads hammer one QuerySession's plan-memo cache and
// the shared StatsCatalog through the same hit/miss/invalidation patterns
// concurrent serving produces. Correctness bar: no data race (tsan), no
// crash, and every thread observes byte-identical query results — cache
// hits must be indistinguishable from misses.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "optimizer/cardinality_model.h"
#include "optimizer/planner.h"
#include "optimizer/query_context.h"
#include "reopt/query_runner.h"
#include "tests/test_util.h"
#include "workload/job_like.h"

namespace reopt {
namespace {

using testing::SmallImdb;

constexpr int kThreads = 8;

// ---- Shared QuerySession: plan-memo + oracle cache --------------------------

// Every thread runs the same session under four different model specs (four
// distinct memo keys) with re-optimization on: the first run per key is a
// miss that publishes the memo, every later run replays it — concurrently,
// from all threads, with per-round rewrites exercising the oracle cache
// too. All runs under one key must agree exactly.
TEST(CacheStressTest, SharedSessionMemoHitsAndMissesFromEightThreads) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto spec = workload::MakeQuery6d(db->catalog);
  auto session = reoptimizer::QuerySession::Create(spec.get(), &db->catalog,
                                                   &db->stats);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  const std::vector<reoptimizer::ModelSpec> models = {
      reoptimizer::ModelSpec::Estimator(), reoptimizer::ModelSpec::PerfectN(1),
      reoptimizer::ModelSpec::PerfectN(2),
      reoptimizer::ModelSpec::PerfectN(4)};
  reoptimizer::ReoptOptions reopt;
  reopt.enabled = true;
  reopt.qerror_threshold = 32.0;
  constexpr int kItersPerThread = 8;

  struct Observed {
    std::vector<common::Value> aggregates;
    int64_t raw_rows = 0;
    double plan_cost_units = 0.0;
    double exec_cost_units = 0.0;
    int num_materializations = 0;
  };
  // [thread][iteration] -> result for model iteration % models.size().
  std::vector<std::vector<Observed>> observed(
      kThreads, std::vector<Observed>(kItersPerThread));
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Worker-private runner with its own temp namespace, exactly like a
      // service worker; the *session* is the shared piece.
      reoptimizer::QueryRunner runner(&db->catalog, &db->stats,
                                      optimizer::CostParams{});
      runner.set_temp_namespace("stress_w" + std::to_string(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        auto run = runner.Run(session->get(),
                              models[static_cast<size_t>(i) % models.size()],
                              reopt);
        if (!run.ok()) {
          failures.fetch_add(1);
          continue;
        }
        observed[static_cast<size_t>(t)][static_cast<size_t>(i)] =
            Observed{run->aggregates, run->raw_rows, run->plan_cost_units,
                     run->exec_cost_units, run->num_materializations};
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Per model spec, every (thread, iteration) result is identical — cache
  // hits replay exactly what the miss computed.
  for (size_t m = 0; m < models.size(); ++m) {
    const Observed& want = observed[0][m];
    for (int t = 0; t < kThreads; ++t) {
      for (size_t i = m; i < static_cast<size_t>(kItersPerThread);
           i += models.size()) {
        const Observed& got = observed[static_cast<size_t>(t)][i];
        EXPECT_EQ(got.aggregates, want.aggregates) << "model " << m;
        EXPECT_EQ(got.raw_rows, want.raw_rows) << "model " << m;
        EXPECT_EQ(got.plan_cost_units, want.plan_cost_units) << "model " << m;
        EXPECT_EQ(got.exec_cost_units, want.exec_cost_units) << "model " << m;
        EXPECT_EQ(got.num_materializations, want.num_materializations)
            << "model " << m;
      }
    }
  }
}

// Raw FindPlanMemo/StorePlanMemo races: all threads race to publish memos
// under the same keys. First writer wins; every Find after a Store under
// that key returns a non-null memo that plans to the same result.
TEST(CacheStressTest, PlanMemoStoreRaceFirstWriterWins) {
  imdb::ImdbDatabase* db = SmallImdb();
  auto spec = workload::MakeQueryFig6(db->catalog);
  auto session = reoptimizer::QuerySession::Create(spec.get(), &db->catalog,
                                                   &db->stats);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // One real memo, copied into every Store call (all writers publishing
  // identical memos is exactly the benign race the contract allows).
  auto ctx = optimizer::QueryContext::Bind(spec.get(), &db->catalog,
                                           &db->stats);
  ASSERT_TRUE(ctx.ok());
  optimizer::EstimatorModel model(ctx->get());
  optimizer::CostParams params;
  optimizer::Planner planner(ctx->get(), &model, params);
  auto planned = planner.Plan();
  ASSERT_TRUE(planned.ok());
  optimizer::PlanMemo memo = planner.TakeMemo();

  constexpr int kKeys = 16;
  std::atomic<int> nulls_after_store{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t key = 0; key < kKeys; ++key) {
        if (session->get()->FindPlanMemo(key) == nullptr) {
          session->get()->StorePlanMemo(key, memo);
        }
        // After this thread stored (or observed) a memo for `key`, Find
        // must never regress to null.
        if (session->get()->FindPlanMemo(key) == nullptr) {
          nulls_after_store.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(nulls_after_store.load(), 0);
  for (uint64_t key = 0; key < kKeys; ++key) {
    auto found = session->get()->FindPlanMemo(key);
    ASSERT_NE(found, nullptr) << "key " << key;
    // The published memo replays to the same plan the DP produced.
    optimizer::EstimatorModel m(ctx->get());
    optimizer::Planner p(ctx->get(), &m, params);
    auto replayed = p.PlanFromMemo(*found);
    ASSERT_TRUE(replayed.ok());
    EXPECT_EQ(replayed->planning_cost_units, planned->planning_cost_units);
  }
}

// ---- StatsCatalog: concurrent Set/Find/Remove -------------------------------

// The service discipline: every worker Set/Removes only its own namespaced
// temp entries while everyone concurrently reads the shared base-table
// stats. 8 threads cycle their private entries through
// set -> find(hit) -> remove -> find(miss) while reading "title" stats on
// every step; base stats must stay visible and untouched throughout.
TEST(CacheStressTest, StatsCatalogNamespacedChurnUnderSharedReads) {
  imdb::ImdbDatabase* db = SmallImdb();
  const stats::TableStats* keyword_stats = db->stats.Find("keyword");
  ASSERT_NE(keyword_stats, nullptr);
  const stats::TableStats seed = *keyword_stats;
  const double title_rows = db->stats.Find("title")->row_count;

  constexpr int kIters = 200;
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string mine = "stress_stats_t" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        db->stats.Set(mine, seed);
        const stats::TableStats* found = db->stats.Find(mine);
        if (found == nullptr || found->row_count != seed.row_count) {
          violations.fetch_add(1);
        }
        // Shared read amid foreign churn.
        const stats::TableStats* title = db->stats.Find("title");
        if (title == nullptr || title->row_count != title_rows) {
          violations.fetch_add(1);
        }
        db->stats.Remove(mine);
        if (db->stats.Find(mine) != nullptr) violations.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(db->stats.Find("stress_stats_t" + std::to_string(t)), nullptr);
  }
}

}  // namespace
}  // namespace reopt
