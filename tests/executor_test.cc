#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/planner.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::exec {
namespace {

using testing::SmallImdb;

// Plans a query with the given options and executes it; returns both.
struct Planned {
  std::unique_ptr<plan::QuerySpec> query;
  std::unique_ptr<optimizer::QueryContext> ctx;
  std::unique_ptr<optimizer::EstimatorModel> model;
  plan::PlanNodePtr root;
  QueryResult result;
};

Planned PlanAndRun(std::unique_ptr<plan::QuerySpec> query,
                   const optimizer::PlannerOptions& options = {}) {
  Planned out;
  imdb::ImdbDatabase* db = SmallImdb();
  out.query = std::move(query);
  auto bound =
      optimizer::QueryContext::Bind(out.query.get(), &db->catalog, &db->stats);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  out.ctx = std::move(bound.value());
  out.model = std::make_unique<optimizer::EstimatorModel>(out.ctx.get());
  optimizer::CostParams params;
  optimizer::Planner planner(out.ctx.get(), out.model.get(), params, options);
  auto planned = planner.Plan();
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  out.root = std::move(planned->root);

  Executor executor(&db->catalog, &db->stats, params);
  auto executed = executor.Execute(*out.query, out.root.get());
  EXPECT_TRUE(executed.ok()) << executed.status().ToString();
  out.result = std::move(executed.value());
  return out;
}

TEST(ExecutorTest, ActualsFilledOnEveryNode) {
  Planned p = PlanAndRun(workload::MakeQuery6d(SmallImdb()->catalog));
  p.root->PostOrder([](plan::PlanNode* node) {
    if (node->op == plan::PlanOp::kIndexScan ||
        node->op == plan::PlanOp::kSeqScan) {
      // Index-NLJ inner scans are probed, not scanned; all others must
      // carry actuals.
      return;
    }
    EXPECT_GE(node->actual_rows, 0.0) << plan::PlanOpName(node->op);
  });
  EXPECT_GT(p.result.cost_units, 0.0);
}

TEST(ExecutorTest, JoinActualsMatchOracleTruth) {
  imdb::ImdbDatabase* db = SmallImdb();
  Planned p = PlanAndRun(workload::MakeQuery6d(db->catalog));
  optimizer::TrueCardinalityOracle oracle(p.ctx.get());
  p.root->PostOrder([&](plan::PlanNode* node) {
    if (!node->is_join()) return;
    EXPECT_DOUBLE_EQ(node->actual_rows, oracle.True(node->rels))
        << node->rels.ToString();
  });
}

TEST(ExecutorTest, ResultsIdenticalAcrossOperatorChoices) {
  // Hash-only vs NLJ-only vs index-NLJ-preferred plans must produce the
  // same aggregates (physical operators are semantically equivalent).
  auto run_with = [&](bool hash, bool nlj, bool inlj) {
    optimizer::PlannerOptions opts;
    opts.enable_hash_join = hash;
    opts.enable_nested_loop = nlj;
    opts.enable_index_nested_loop = inlj;
    return PlanAndRun(workload::MakeQuery6d(SmallImdb()->catalog), opts);
  };
  Planned hash_only = run_with(true, false, false);
  Planned inlj_only = run_with(false, false, true);
  Planned everything = run_with(true, true, true);

  ASSERT_EQ(hash_only.result.aggregates.size(),
            everything.result.aggregates.size());
  for (size_t i = 0; i < hash_only.result.aggregates.size(); ++i) {
    EXPECT_EQ(hash_only.result.aggregates[i],
              everything.result.aggregates[i]);
    EXPECT_EQ(inlj_only.result.aggregates[i],
              everything.result.aggregates[i]);
  }
  EXPECT_EQ(hash_only.result.raw_rows, everything.result.raw_rows);
  EXPECT_EQ(inlj_only.result.raw_rows, everything.result.raw_rows);
}

TEST(ExecutorTest, NestedLoopChargedQuadratically) {
  // Force a pure NLJ plan on a two-table join and check the charge
  // dominates the hash-join charge for the same inputs.
  imdb::ImdbDatabase* db = SmallImdb();
  auto make_query = [&]() {
    workload::QueryBuilder qb(&db->catalog, "two_way");
    int t = qb.AddRelation("title", "t");
    int mk = qb.AddRelation("movie_keyword", "mk");
    qb.Join(t, "id", mk, "movie_id")
        .FilterBetween(t, "production_year", common::Value::Int(2000),
                       common::Value::Int(2005))
        .OutputMin(t, "title", "m");
    return qb.Build();
  };
  optimizer::PlannerOptions nlj_only;
  nlj_only.enable_hash_join = false;
  nlj_only.enable_index_nested_loop = false;
  optimizer::PlannerOptions hash_only;
  hash_only.enable_nested_loop = false;
  hash_only.enable_index_nested_loop = false;

  Planned nlj = PlanAndRun(make_query(), nlj_only);
  Planned hash = PlanAndRun(make_query(), hash_only);
  EXPECT_EQ(nlj.result.raw_rows, hash.result.raw_rows);
  EXPECT_GT(nlj.result.cost_units, 10.0 * hash.result.cost_units);
}

TEST(ExecutorTest, AggregateMinSkipsNulls) {
  imdb::ImdbDatabase* db = SmallImdb();
  workload::QueryBuilder qb(&db->catalog, "min_gender");
  int n = qb.AddRelation("name", "n");
  qb.FilterLike(n, "name", "Adams%").OutputMin(n, "gender", "g");
  Planned p = PlanAndRun(qb.Build());
  ASSERT_EQ(p.result.aggregates.size(), 1u);
  // Some gender values are NULL; MIN must skip them and return 'f'.
  EXPECT_EQ(p.result.aggregates[0], common::Value::Str("f"));
}

TEST(ExecutorTest, EmptyResultYieldsNullAggregates) {
  imdb::ImdbDatabase* db = SmallImdb();
  workload::QueryBuilder qb(&db->catalog, "empty");
  int t = qb.AddRelation("title", "t");
  qb.FilterEq(t, "production_year", common::Value::Int(1700))
      .OutputMin(t, "title", "m");
  Planned p = PlanAndRun(qb.Build());
  EXPECT_EQ(p.result.raw_rows, 0);
  ASSERT_EQ(p.result.aggregates.size(), 1u);
  EXPECT_TRUE(p.result.aggregates[0].is_null());
}

TEST(ExecutorTest, MissingTableReportedNotFound) {
  imdb::ImdbDatabase* db = SmallImdb();
  plan::QuerySpec spec;
  spec.relations.push_back(plan::RelationRef{"no_such_table", "x"});
  plan::PlanNode root;
  root.op = plan::PlanOp::kSeqScan;
  root.scan_rel = 0;
  optimizer::CostParams params;
  Executor executor(&db->catalog, &db->stats, params);
  auto result = executor.Execute(spec, &root);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kNotFound);
}

TEST(ExecutorTest, TempWriteMaterializesAndAnalyzes) {
  imdb::ImdbDatabase* db = SmallImdb();
  workload::QueryBuilder qb(&db->catalog, "mat");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  qb.Join(t, "id", mk, "movie_id")
      .FilterCompare(t, "production_year", plan::CompareOp::kGt,
                     common::Value::Int(2015))
      .OutputMin(t, "title", "m");
  auto query = qb.Build();

  auto bound =
      optimizer::QueryContext::Bind(query.get(), &db->catalog, &db->stats);
  ASSERT_TRUE(bound.ok());
  optimizer::EstimatorModel model(bound.value().get());
  optimizer::CostParams params;
  optimizer::Planner planner(bound.value().get(), &model, params);
  auto planned = planner.Plan();
  ASSERT_TRUE(planned.ok());

  // Wrap the join (the aggregate's child) in a TempWrite.
  plan::PlanNodePtr join = std::move(planned->root->left);
  auto write = std::make_unique<plan::PlanNode>();
  write->op = plan::PlanOp::kTempWrite;
  write->rels = join->rels;
  write->temp_table_name = "test_temp_1";
  write->temp_columns = {plan::ColumnRef{0, qb.Col(0, "title"), "title"},
                         plan::ColumnRef{1, qb.Col(1, "keyword_id"), "keyword_id"}};
  write->left = std::move(join);

  Executor executor(&db->catalog, &db->stats, params);
  auto result = executor.Execute(*query, write.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  storage::Table* temp = db->catalog.FindTable("test_temp_1");
  ASSERT_NE(temp, nullptr);
  EXPECT_TRUE(db->catalog.IsTemporary("test_temp_1"));
  EXPECT_EQ(temp->num_rows(), result->raw_rows);
  EXPECT_EQ(temp->num_columns(), 2);
  EXPECT_EQ(temp->schema().column(0).name, "t_title");
  // Stats were registered with exact row count.
  ASSERT_NE(db->stats.Find("test_temp_1"), nullptr);
  EXPECT_DOUBLE_EQ(db->stats.Find("test_temp_1")->row_count,
                   static_cast<double>(temp->num_rows()));

  ASSERT_TRUE(db->catalog.DropTable("test_temp_1").ok());
  db->stats.Remove("test_temp_1");
}

TEST(ExecutorTest, ChargedCostsArePositiveAndSumToTotal) {
  Planned p = PlanAndRun(workload::MakeQueryFig6(SmallImdb()->catalog));
  double sum = 0.0;
  p.root->PostOrder([&](plan::PlanNode* node) {
    EXPECT_GE(node->charged_cost, 0.0);
    sum += node->charged_cost;
  });
  EXPECT_DOUBLE_EQ(sum, p.result.cost_units);
}

TEST(ExecutorTest, DeterministicAcrossRuns) {
  Planned a = PlanAndRun(workload::MakeQuery18a(SmallImdb()->catalog));
  Planned b = PlanAndRun(workload::MakeQuery18a(SmallImdb()->catalog));
  EXPECT_DOUBLE_EQ(a.result.cost_units, b.result.cost_units);
  EXPECT_EQ(a.result.raw_rows, b.result.raw_rows);
}

}  // namespace
}  // namespace reopt::exec
