#include <gtest/gtest.h>

#include "optimizer/selectivity.h"
#include "stats/analyze.h"
#include "tests/test_util.h"

namespace reopt::optimizer {
namespace {

using common::Value;
using testing::SmallImdb;

stats::ColumnStats StatsOf(const char* table, const char* column) {
  imdb::ImdbDatabase* db = SmallImdb();
  const storage::Table* t = db->catalog.FindTable(table);
  common::ColumnIdx idx = t->schema().FindColumn(column);
  return db->stats.Find(table)->column(idx);
}

double TrueSelectivity(const char* table, const plan::ScanPredicate& pred) {
  imdb::ImdbDatabase* db = SmallImdb();
  const storage::Table* t = db->catalog.FindTable(table);
  int64_t hits = 0;
  for (common::RowIdx r = 0; r < t->num_rows(); ++r) {
    if (exec::EvalPredicate(pred, *t, r)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(t->num_rows());
}

plan::ScanPredicate Pred(const char* table, const char* column,
                         plan::ScanPredicate::Kind kind) {
  imdb::ImdbDatabase* db = SmallImdb();
  plan::ScanPredicate p;
  p.column = plan::ColumnRef{
      0, db->catalog.FindTable(table)->schema().FindColumn(column), ""};
  p.kind = kind;
  return p;
}

// ---- Equality via MCVs: accurate on skewed dimension values ----------------

TEST(SelectivityTest, EqOnMcvValueIsAccurate) {
  stats::ColumnStats cs = StatsOf("company_name", "country_code");
  plan::ScanPredicate p = Pred("company_name", "country_code",
                               plan::ScanPredicate::Kind::kCompare);
  p.op = plan::CompareOp::kEq;
  p.value = Value::Str("[us]");
  double est = EstimateFilterSelectivity(p, &cs);
  double truth = TrueSelectivity("company_name", p);
  EXPECT_NEAR(est, truth, 0.02);  // MCV gives a near-exact answer
}

TEST(SelectivityTest, EqOnUniformValueUsesUniformity) {
  stats::ColumnStats cs = StatsOf("keyword", "keyword");
  plan::ScanPredicate p =
      Pred("keyword", "keyword", plan::ScanPredicate::Kind::kCompare);
  p.op = plan::CompareOp::kEq;
  p.value = Value::Str("kw_000300");
  double est = EstimateFilterSelectivity(p, &cs);
  double truth = TrueSelectivity("keyword", p);
  // Unique values: estimate ~1/ndv, truth 1/N — both tiny and close.
  EXPECT_NEAR(est, truth, truth * 2 + 1e-6);
}

TEST(SelectivityTest, MissingStatsFallsBackToDefault) {
  plan::ScanPredicate p =
      Pred("keyword", "keyword", plan::ScanPredicate::Kind::kCompare);
  p.op = plan::CompareOp::kEq;
  p.value = Value::Str("anything");
  EXPECT_DOUBLE_EQ(EstimateFilterSelectivity(p, nullptr), kDefaultEqSel);
}

// ---- Ranges ------------------------------------------------------------------

TEST(SelectivityTest, YearRangeCloseToTruth) {
  stats::ColumnStats cs = StatsOf("title", "production_year");
  plan::ScanPredicate p = Pred("title", "production_year",
                               plan::ScanPredicate::Kind::kBetween);
  p.value = Value::Int(1990);
  p.value2 = Value::Int(2010);
  double est = EstimateFilterSelectivity(p, &cs);
  double truth = TrueSelectivity("title", p);
  EXPECT_NEAR(est, truth, 0.08);
}

TEST(SelectivityTest, GreaterThanComplementsLessEqual) {
  stats::ColumnStats cs = StatsOf("title", "production_year");
  plan::ScanPredicate gt = Pred("title", "production_year",
                                plan::ScanPredicate::Kind::kCompare);
  gt.op = plan::CompareOp::kGt;
  gt.value = Value::Int(2000);
  plan::ScanPredicate le = gt;
  le.op = plan::CompareOp::kLe;
  double s_gt = EstimateFilterSelectivity(gt, &cs);
  double s_le = EstimateFilterSelectivity(le, &cs);
  EXPECT_NEAR(s_gt + s_le, 1.0, 0.05);
}

// ---- IN lists ------------------------------------------------------------------

TEST(SelectivityTest, InListSumsEqualities) {
  stats::ColumnStats cs = StatsOf("title", "production_year");
  plan::ScanPredicate in =
      Pred("title", "production_year", plan::ScanPredicate::Kind::kIn);
  in.in_list = {Value::Int(2001), Value::Int(2002), Value::Int(2003)};
  plan::ScanPredicate eq = Pred("title", "production_year",
                                plan::ScanPredicate::Kind::kCompare);
  eq.op = plan::CompareOp::kEq;
  double sum = 0.0;
  for (const Value& v : in.in_list) {
    eq.value = v;
    sum += EstimateFilterSelectivity(eq, &cs);
  }
  EXPECT_NEAR(EstimateFilterSelectivity(in, &cs), sum, 1e-9);
}

// ---- LIKE: the un-anchored default is the paper's failure mode -------------------

TEST(SelectivityTest, UnanchoredLikeUsesDefaultRegardlessOfTruth) {
  // The estimator has no statistics for un-anchored patterns: it returns
  // the same fixed default whether the token is a rare star token or a
  // common first name, even though the truths differ by an order of
  // magnitude. This blindness is what the paper's 18a-style queries hit.
  stats::ColumnStats cs = StatsOf("name", "name");
  plan::ScanPredicate rare =
      Pred("name", "name", plan::ScanPredicate::Kind::kLike);
  rare.value = Value::Str("%Downey%");
  plan::ScanPredicate frequent = rare;
  frequent.value = Value::Str("%Maria%");
  double est_rare = EstimateFilterSelectivity(rare, &cs);
  double est_frequent = EstimateFilterSelectivity(frequent, &cs);
  EXPECT_NEAR(est_rare, kDefaultMatchSel, kDefaultMatchSel);
  EXPECT_DOUBLE_EQ(est_rare, est_frequent);
  double truth_rare = TrueSelectivity("name", rare);
  double truth_frequent = TrueSelectivity("name", frequent);
  EXPECT_GT(truth_frequent / std::max(truth_rare, 1e-9), 5.0);
}

TEST(SelectivityTest, AnchoredLikeUsesHistogramPrefixRange) {
  stats::ColumnStats cs = StatsOf("title", "title");
  plan::ScanPredicate p =
      Pred("title", "title", plan::ScanPredicate::Kind::kLike);
  p.value = Value::Str("Saga%");
  double est = EstimateFilterSelectivity(p, &cs);
  double truth = TrueSelectivity("title", p);
  // Prefix range through the histogram should land near the truth (~5%).
  EXPECT_NEAR(est, truth, 0.05);
  EXPECT_GT(est, kDefaultMatchSel);  // better than the blind default
}

TEST(SelectivityTest, NotLikeComplements) {
  stats::ColumnStats cs = StatsOf("name", "name");
  plan::ScanPredicate like =
      Pred("name", "name", plan::ScanPredicate::Kind::kLike);
  like.value = Value::Str("%Tim%");
  plan::ScanPredicate not_like = like;
  not_like.kind = plan::ScanPredicate::Kind::kNotLike;
  double a = EstimateFilterSelectivity(like, &cs);
  double b = EstimateFilterSelectivity(not_like, &cs);
  EXPECT_NEAR(a + b, 1.0, 0.05);
}

// ---- NULL tests -------------------------------------------------------------------

TEST(SelectivityTest, NullFractionDrivesIsNull) {
  stats::ColumnStats cs = StatsOf("name", "gender");
  plan::ScanPredicate is_null =
      Pred("name", "gender", plan::ScanPredicate::Kind::kIsNull);
  plan::ScanPredicate is_not_null =
      Pred("name", "gender", plan::ScanPredicate::Kind::kIsNotNull);
  double null_est = EstimateFilterSelectivity(is_null, &cs);
  double truth = TrueSelectivity("name", is_null);
  EXPECT_NEAR(null_est, truth, 0.01);
  EXPECT_NEAR(EstimateFilterSelectivity(is_not_null, &cs), 1.0 - truth,
              0.01);
}

// ---- Join edge selectivity -----------------------------------------------------------

TEST(SelectivityTest, FkJoinEdgeSelectivityNearOneOverKeys) {
  // title.id = movie_keyword.movie_id: 1/max(ndv) should be ~1/|title|.
  imdb::ImdbDatabase* db = SmallImdb();
  plan::QuerySpec spec;
  spec.relations.push_back(plan::RelationRef{"title", "t"});
  spec.relations.push_back(plan::RelationRef{"movie_keyword", "mk"});
  plan::JoinEdge e;
  e.left = plan::ColumnRef{
      0, db->catalog.FindTable("title")->schema().FindColumn("id"), ""};
  e.right = plan::ColumnRef{
      1,
      db->catalog.FindTable("movie_keyword")->schema().FindColumn("movie_id"), ""};
  spec.joins.push_back(e);
  plan::OutputExpr out;
  out.column = e.left;
  spec.outputs.push_back(out);

  auto ctx = QueryContext::Bind(&spec, &db->catalog, &db->stats);
  ASSERT_TRUE(ctx.ok());
  double sel = EstimateJoinEdgeSelectivity(spec.joins[0], **ctx);
  double titles =
      static_cast<double>(db->catalog.FindTable("title")->num_rows());
  EXPECT_NEAR(sel, 1.0 / titles, 0.5 / titles);
}

// ---- MCV-only columns (histogram empty) --------------------------------------------

// A column whose every frequent value made the MCV list keeps no histogram.
// The fix: the residual non-MCV mass splits by the *empirical* MCV fraction
// (mcv_part / mcv_total) instead of being blended with the blind 1/3
// default, which skewed every such range estimate toward 0.3333.
stats::ColumnStats McvOnlyStats() {
  stats::ColumnStats cs;
  cs.null_frac = 0.0;
  cs.num_distinct = 8.0;
  cs.mcv.values = {Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)};
  cs.mcv.freqs = {0.36, 0.27, 0.18, 0.09};  // total 0.9
  cs.non_mcv_frac = 0.1;
  cs.non_mcv_distinct = 4.0;
  cs.min = Value::Int(1);
  cs.max = Value::Int(8);
  return cs;
}

TEST(SelectivityTest, McvOnlyRangeUsesEmpiricalMcvFraction) {
  stats::ColumnStats cs = McvOnlyStats();
  plan::ScanPredicate p = Pred("title", "production_year",
                               plan::ScanPredicate::Kind::kCompare);
  p.op = plan::CompareOp::kLe;
  p.value = Value::Int(2);
  // MCV mass <= 2 is 0.63 of 0.9 total; the 0.1 non-MCV residue follows the
  // same 0.7 split: 0.63 + 0.1 * 0.7 = 0.70. The old blend with
  // kDefaultRangeSel gave 0.63 + 0.1 / 3 = 0.6633.
  EXPECT_NEAR(EstimateFilterSelectivity(p, &cs), 0.70, 1e-9);
}

TEST(SelectivityTest, McvOnlyRangeComplementsAreConsistent) {
  stats::ColumnStats cs = McvOnlyStats();
  plan::ScanPredicate le = Pred("title", "production_year",
                                plan::ScanPredicate::Kind::kCompare);
  le.op = plan::CompareOp::kLe;
  le.value = Value::Int(2);
  plan::ScanPredicate gt = le;
  gt.op = plan::CompareOp::kGt;
  double s_le = EstimateFilterSelectivity(le, &cs);
  double s_gt = EstimateFilterSelectivity(gt, &cs);
  // P(<=2) = 0.70 and P(>2) = 0.30 must partition the non-null mass; the
  // old default-blend formula broke this (0.6633 + 0.3633 > 1).
  EXPECT_NEAR(s_le + s_gt, 1.0, 1e-9);
  EXPECT_NEAR(s_gt, 0.30, 1e-9);
}

TEST(SelectivityTest, McvOnlyRangeAtExtremesStaysBounded) {
  stats::ColumnStats cs = McvOnlyStats();
  plan::ScanPredicate p = Pred("title", "production_year",
                               plan::ScanPredicate::Kind::kCompare);
  p.op = plan::CompareOp::kLt;
  p.value = Value::Int(1);  // nothing below the smallest MCV
  EXPECT_NEAR(EstimateFilterSelectivity(p, &cs), kMinSel, 1e-12);
  p.op = plan::CompareOp::kGe;
  EXPECT_NEAR(EstimateFilterSelectivity(p, &cs), 1.0, 1e-9);
}

TEST(SelectivityTest, SelectivityAlwaysInUnitRange) {
  // Sweep every (predicate kind x column) pair we use and assert bounds.
  stats::ColumnStats cs = StatsOf("title", "production_year");
  for (auto op : {plan::CompareOp::kEq, plan::CompareOp::kNe,
                  plan::CompareOp::kLt, plan::CompareOp::kLe,
                  plan::CompareOp::kGt, plan::CompareOp::kGe}) {
    plan::ScanPredicate p = Pred("title", "production_year",
                                 plan::ScanPredicate::Kind::kCompare);
    p.op = op;
    for (int64_t v : {-100, 1900, 1980, 2019, 5000}) {
      p.value = Value::Int(v);
      double s = EstimateFilterSelectivity(p, &cs);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

}  // namespace
}  // namespace reopt::optimizer
