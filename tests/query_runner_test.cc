#include <gtest/gtest.h>

#include "reopt/query_runner.h"
#include "tests/test_util.h"
#include "workload/job_like.h"
#include "workload/query_builder.h"

namespace reopt::reoptimizer {
namespace {

using testing::SmallImdb;

struct Harness {
  explicit Harness(imdb::ImdbDatabase* database = SmallImdb())
      : db(database), runner(&db->catalog, &db->stats, params) {}
  imdb::ImdbDatabase* db;
  optimizer::CostParams params;
  QueryRunner runner;

  std::unique_ptr<QuerySession> Session(const plan::QuerySpec* spec) {
    auto s = QuerySession::Create(spec, &db->catalog, &db->stats);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return std::move(s.value());
  }
};

ReoptOptions ReoptOn(double threshold = 32.0) {
  ReoptOptions r;
  r.enabled = true;
  r.qerror_threshold = threshold;
  return r;
}

TEST(QueryRunnerTest, ReoptPreservesResults) {
  Harness h;
  for (auto make : {workload::MakeQuery6d, workload::MakeQuery18a,
                    workload::MakeQueryFig6, workload::MakeQuery16b,
                    workload::MakeQuery25c, workload::MakeQuery30a}) {
    auto query = make(h.db->catalog);
    auto session = h.Session(query.get());
    auto plain = h.runner.Run(session.get(), ModelSpec::Estimator(), {});
    auto reopt = h.runner.Run(session.get(), ModelSpec::Estimator(),
                              ReoptOn());
    ASSERT_TRUE(plain.ok()) << query->name;
    ASSERT_TRUE(reopt.ok()) << query->name;
    EXPECT_EQ(plain->raw_rows, reopt->raw_rows) << query->name;
    ASSERT_EQ(plain->aggregates.size(), reopt->aggregates.size());
    for (size_t i = 0; i < plain->aggregates.size(); ++i) {
      EXPECT_EQ(plain->aggregates[i], reopt->aggregates[i])
          << query->name << " output " << i;
    }
  }
}

imdb::ImdbDatabase* TrapScaleImdb() {
  // The 6d catastrophe (nested loop on an underestimated join) appears
  // once the data is large enough for the bad plan to be chosen; 0.25 is
  // the quickstart scale where re-optimization wins ~45x.
  static imdb::ImdbDatabase* db = [] {
    imdb::ImdbOptions options;
    options.scale = 0.25;
    return imdb::BuildImdbDatabase(options).release();
  }();
  return db;
}

TEST(QueryRunnerTest, ReoptImprovesTrapQueries) {
  Harness h(TrapScaleImdb());
  auto query = workload::MakeQuery6d(h.db->catalog);
  auto session = h.Session(query.get());
  auto plain = h.runner.Run(session.get(), ModelSpec::Estimator(), {});
  auto reopt =
      h.runner.Run(session.get(), ModelSpec::Estimator(), ReoptOn());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(reopt.ok());
  EXPECT_GT(reopt->num_materializations, 0);
  EXPECT_LT(reopt->exec_cost_units, plain->exec_cost_units);
  // Re-optimization pays extra planning.
  EXPECT_GE(reopt->plan_cost_units, plain->plan_cost_units);
}

TEST(QueryRunnerTest, HugeThresholdNeverTriggers) {
  Harness h;
  auto query = workload::MakeQuery6d(h.db->catalog);
  auto session = h.Session(query.get());
  auto reopt = h.runner.Run(session.get(), ModelSpec::Estimator(),
                            ReoptOn(1e12));
  ASSERT_TRUE(reopt.ok());
  EXPECT_EQ(reopt->num_materializations, 0);
  auto plain = h.runner.Run(session.get(), ModelSpec::Estimator(), {});
  ASSERT_TRUE(plain.ok());
  EXPECT_DOUBLE_EQ(reopt->exec_cost_units, plain->exec_cost_units);
}

TEST(QueryRunnerTest, PerfectModelNeverTriggersReopt) {
  Harness h;
  auto query = workload::MakeQuery6d(h.db->catalog);
  auto session = h.Session(query.get());
  auto run = h.runner.Run(
      session.get(), ModelSpec::PerfectN(query->num_relations()), ReoptOn());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->num_materializations, 0);
}

TEST(QueryRunnerTest, TempTablesCleanedUp) {
  Harness h;
  auto query = workload::MakeQuery6d(h.db->catalog);
  auto session = h.Session(query.get());
  size_t before = h.db->catalog.TableNames().size();
  auto reopt =
      h.runner.Run(session.get(), ModelSpec::Estimator(), ReoptOn());
  ASSERT_TRUE(reopt.ok());
  EXPECT_GT(reopt->num_materializations, 0);
  EXPECT_EQ(h.db->catalog.TableNames().size(), before);
  EXPECT_TRUE(h.db->catalog.TableNames(/*temp_only=*/true).empty());
}

TEST(QueryRunnerTest, RoundLogConsistent) {
  Harness h;
  auto query = workload::MakeQuery6d(h.db->catalog);
  auto session = h.Session(query.get());
  auto reopt =
      h.runner.Run(session.get(), ModelSpec::Estimator(), ReoptOn());
  ASSERT_TRUE(reopt.ok());
  ASSERT_FALSE(reopt->rounds.empty());
  // Last round is the final execution; earlier rounds are
  // materializations with the trigger recorded.
  for (size_t i = 0; i + 1 < reopt->rounds.size(); ++i) {
    EXPECT_TRUE(reopt->rounds[i].materialized);
    EXPECT_GT(reopt->rounds[i].qerror, 32.0);
    EXPECT_GE(reopt->rounds[i].subset.count(), 2);
  }
  EXPECT_FALSE(reopt->rounds.back().materialized);
  EXPECT_EQ(static_cast<int>(reopt->rounds.size()) - 1,
            reopt->num_materializations);
  // Cost bookkeeping adds up.
  double plan_sum = 0.0;
  double exec_sum = 0.0;
  for (const RoundRecord& r : reopt->rounds) {
    plan_sum += r.plan_cost_units;
    exec_sum += r.exec_cost_units;
  }
  EXPECT_DOUBLE_EQ(plan_sum, reopt->plan_cost_units);
  EXPECT_DOUBLE_EQ(exec_sum, reopt->exec_cost_units);
}

TEST(QueryRunnerTest, ThresholdSweepIsMonotoneInMaterializations) {
  // Lower thresholds can only trigger at least as many materializations.
  Harness h;
  auto query = workload::MakeQuery25c(h.db->catalog);
  auto session = h.Session(query.get());
  int prev = 1 << 30;
  for (double threshold : {2.0, 8.0, 32.0, 512.0, 65536.0}) {
    auto run = h.runner.Run(session.get(), ModelSpec::Estimator(),
                            ReoptOn(threshold));
    ASSERT_TRUE(run.ok());
    EXPECT_LE(run->num_materializations, prev) << threshold;
    prev = run->num_materializations;
  }
}

TEST(QueryRunnerTest, WellEstimatedQueryNotReoptimized) {
  Harness h;
  // A benign query: year range + cold keyword, accurate estimates.
  workload::QueryBuilder qb(&h.db->catalog, "benign");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  int k = qb.AddRelation("keyword", "k");
  qb.Join(t, "id", mk, "movie_id")
      .Join(mk, "keyword_id", k, "id")
      .FilterBetween(t, "production_year", common::Value::Int(1950),
                     common::Value::Int(1980))
      .OutputMin(t, "title", "m");
  auto query = qb.Build();
  auto session = h.Session(query.get());
  auto run =
      h.runner.Run(session.get(), ModelSpec::Estimator(), ReoptOn(32.0));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->num_materializations, 0);
}

TEST(QueryRunnerTest, PerfectNReducesMaterializationNeed) {
  // With a higher oracle horizon, the re-optimizer should fire no more
  // often than with the plain estimator.
  Harness h;
  auto query = workload::MakeQuery25c(h.db->catalog);
  auto session = h.Session(query.get());
  auto est = h.runner.Run(session.get(), ModelSpec::Estimator(), ReoptOn());
  auto p4 = h.runner.Run(session.get(), ModelSpec::PerfectN(4), ReoptOn());
  ASSERT_TRUE(est.ok());
  ASSERT_TRUE(p4.ok());
  EXPECT_LE(p4->num_materializations, est->num_materializations);
}

TEST(QueryRunnerTest, DeterministicAcrossRuns) {
  Harness h;
  auto query = workload::MakeQuery16b(h.db->catalog);
  auto session = h.Session(query.get());
  auto a = h.runner.Run(session.get(), ModelSpec::Estimator(), ReoptOn());
  auto b = h.runner.Run(session.get(), ModelSpec::Estimator(), ReoptOn());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->exec_cost_units, b->exec_cost_units);
  EXPECT_DOUBLE_EQ(a->plan_cost_units, b->plan_cost_units);
  EXPECT_EQ(a->num_materializations, b->num_materializations);
}

TEST(QueryRunnerTest, LongRunningOnlyGateSuppressesReopt) {
  // Sec. V-D: "this can be avoided by re-optimizing only long-running
  // queries". With an absurdly high cost gate, re-optimization never
  // fires even on trap queries.
  Harness h;
  auto query = workload::MakeQuery6d(h.db->catalog);
  auto session = h.Session(query.get());
  ReoptOptions gated = ReoptOn();
  gated.min_plan_cost_units = 1e15;
  auto run = h.runner.Run(session.get(), ModelSpec::Estimator(), gated);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->num_materializations, 0);
  // With gate 0 it fires as usual.
  gated.min_plan_cost_units = 0.0;
  auto ungated = h.runner.Run(session.get(), ModelSpec::Estimator(), gated);
  ASSERT_TRUE(ungated.ok());
  EXPECT_GT(ungated->num_materializations, 0);
}

TEST(QueryRunnerTest, MaxQErrorPickMaterializesDifferentSubset) {
  Harness h;
  auto query = workload::MakeQuery25c(h.db->catalog);
  auto session = h.Session(query.get());
  ReoptOptions lowest = ReoptOn();
  ReoptOptions maxq = ReoptOn();
  maxq.pick = ReoptOptions::Pick::kMaxQError;
  auto a = h.runner.Run(session.get(), ModelSpec::Estimator(), lowest);
  auto b = h.runner.Run(session.get(), ModelSpec::Estimator(), maxq);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both policies preserve results.
  ASSERT_EQ(a->aggregates.size(), b->aggregates.size());
  for (size_t i = 0; i < a->aggregates.size(); ++i) {
    EXPECT_EQ(a->aggregates[i], b->aggregates[i]);
  }
  // The paper's pick takes the *lowest* join: its first materialized
  // subset is no larger than the max-Q-error pick's.
  if (a->num_materializations > 0 && b->num_materializations > 0) {
    EXPECT_LE(a->rounds[0].subset.count(), b->rounds[0].subset.count());
  }
}

TEST(QueryRunnerTest, EmptyResultQueryDoesNotTriggerReopt) {
  // Regression guard for the Q-error trigger's zero-row edge case: a join
  // whose true cardinality is 0 must not produce an infinite Q-error
  // (est / 0) that forces materializing an empty subtree every round. Both
  // sides of the ratio clamp to >= 1, so an empty result with a tiny
  // estimate is a *good* estimate (q == 1), not a trigger.
  Harness h;
  workload::QueryBuilder qb(&h.db->catalog, "empty_result");
  int t = qb.AddRelation("title", "t");
  int mk = qb.AddRelation("movie_keyword", "mk");
  qb.Join(t, "id", mk, "movie_id")
      .FilterEq(t, "production_year", common::Value::Int(-987654))
      .OutputMin(t, "title", "m");
  auto query = qb.Build();
  auto session = h.Session(query.get());
  size_t tables_before = h.db->catalog.TableNames().size();
  // With an unclamped truth the Q-error would be est/0 = inf, which beats
  // *any* threshold; clamped, the q stays finite and this must not fire.
  auto run =
      h.runner.Run(session.get(), ModelSpec::Estimator(), ReoptOn(1e9));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->raw_rows, 0);
  EXPECT_EQ(run->num_materializations, 0);
  ASSERT_EQ(run->aggregates.size(), 1u);
  EXPECT_TRUE(run->aggregates[0].is_null());
  EXPECT_EQ(h.db->catalog.TableNames().size(), tables_before);

  // At an aggressive threshold the (finite) overestimate legitimately
  // triggers; materializing and re-planning over an *empty* temp table
  // must work end-to-end and still clean up.
  auto aggressive =
      h.runner.Run(session.get(), ModelSpec::Estimator(), ReoptOn(2.0));
  ASSERT_TRUE(aggressive.ok()) << aggressive.status().ToString();
  EXPECT_EQ(aggressive->raw_rows, 0);
  ASSERT_EQ(aggressive->aggregates.size(), 1u);
  EXPECT_TRUE(aggressive->aggregates[0].is_null());
  EXPECT_EQ(h.db->catalog.TableNames().size(), tables_before);
  EXPECT_TRUE(h.db->catalog.TableNames(/*temp_only=*/true).empty());
}

TEST(QueryRunnerTest, TempNamespaceIsolatesRunners) {
  // Two runners with distinct namespaces share one catalog; their temp
  // tables cannot collide and each cleans up only its own.
  Harness h;
  h.runner.set_temp_namespace("a");
  QueryRunner other(&h.db->catalog, &h.db->stats, h.params);
  other.set_temp_namespace("b");
  auto query = workload::MakeQuery6d(h.db->catalog);
  auto session_a = h.Session(query.get());
  auto session_b = h.Session(query.get());
  auto ra = h.runner.Run(session_a.get(), ModelSpec::Estimator(), ReoptOn());
  auto rb = other.Run(session_b.get(), ModelSpec::Estimator(), ReoptOn());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_GT(ra->num_materializations, 0);
  EXPECT_EQ(ra->num_materializations, rb->num_materializations);
  EXPECT_DOUBLE_EQ(ra->exec_cost_units, rb->exec_cost_units);
  EXPECT_TRUE(h.db->catalog.TableNames(/*temp_only=*/true).empty());
}

TEST(QueryRunnerTest, PlanningErrorLeavesNoTempTables) {
  // The temp-table cleanup is a scope guard, not a success-path epilogue:
  // a Run that fails must leave the catalog and stats untouched.
  Harness h;
  optimizer::PlannerOptions no_joins;
  no_joins.enable_hash_join = false;
  no_joins.enable_nested_loop = false;
  no_joins.enable_index_nested_loop = false;
  h.runner.set_planner_options(no_joins);
  auto query = workload::MakeQuery6d(h.db->catalog);
  auto session = h.Session(query.get());
  size_t tables_before = h.db->catalog.TableNames().size();
  auto run = h.runner.Run(session.get(), ModelSpec::Estimator(), ReoptOn());
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(h.db->catalog.TableNames().size(), tables_before);
  EXPECT_TRUE(h.db->catalog.TableNames(/*temp_only=*/true).empty());
}

TEST(QueryRunnerTest, PlannerOptionsAblationRespected) {
  Harness h;
  auto query = workload::MakeQuery6d(h.db->catalog);
  auto session = h.Session(query.get());
  optimizer::PlannerOptions hash_only;
  hash_only.enable_nested_loop = false;
  hash_only.enable_index_nested_loop = false;
  hash_only.enable_index_scan = false;
  h.runner.set_planner_options(hash_only);
  auto run = h.runner.Run(session.get(), ModelSpec::Estimator(), {});
  h.runner.set_planner_options({});
  ASSERT_TRUE(run.ok());
  auto normal = h.runner.Run(session.get(), ModelSpec::Estimator(), {});
  ASSERT_TRUE(normal.ok());
  EXPECT_EQ(run->raw_rows, normal->raw_rows);  // semantics unchanged
}

}  // namespace
}  // namespace reopt::reoptimizer
