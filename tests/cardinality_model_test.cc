#include <gtest/gtest.h>

#include "optimizer/cardinality_model.h"
#include "tests/test_util.h"
#include "workload/job_like.h"

namespace reopt::optimizer {
namespace {

using testing::SmallImdb;

struct Fixture {
  std::unique_ptr<plan::QuerySpec> query;
  std::unique_ptr<QueryContext> ctx;
  std::unique_ptr<TrueCardinalityOracle> oracle;

  static Fixture For6d() {
    Fixture f;
    imdb::ImdbDatabase* db = SmallImdb();
    f.query = workload::MakeQuery6d(db->catalog);
    auto bound = QueryContext::Bind(f.query.get(), &db->catalog, &db->stats);
    EXPECT_TRUE(bound.ok());
    f.ctx = std::move(bound.value());
    f.oracle = std::make_unique<TrueCardinalityOracle>(f.ctx.get());
    return f;
  }
};

TEST(EstimatorModelTest, CardinalityClampedToOneRow) {
  Fixture f = Fixture::For6d();
  EstimatorModel model(f.ctx.get());
  for (plan::RelSet set : f.ctx->graph().ConnectedSubsets()) {
    EXPECT_GE(model.Cardinality(set), 1.0);
  }
}

TEST(EstimatorModelTest, MemoizedAndCounted) {
  Fixture f = Fixture::For6d();
  EstimatorModel model(f.ctx.get());
  plan::RelSet set(0b00110);
  model.Cardinality(set);
  int64_t n = model.num_estimates();
  model.Cardinality(set);
  EXPECT_EQ(model.num_estimates(), n);  // memo hit, not recounted
}

TEST(EstimatorModelTest, EstimatesBySizeTracksSubsetSizes) {
  Fixture f = Fixture::For6d();
  EstimatorModel model(f.ctx.get());
  model.Cardinality(f.query->AllRelations());
  const auto& by_size = model.estimates_by_size();
  // The peel recursion touches at least one subset of every size 1..5.
  for (int size = 1; size <= 5; ++size) {
    auto it = by_size.find(size);
    ASSERT_NE(it, by_size.end()) << "size " << size;
    EXPECT_GE(it->second, 1);
  }
}

TEST(EstimatorModelTest, UnderestimatesHotKeywordJoin) {
  // The defining 6d failure: the mk x k join under the hot IN-list.
  Fixture f = Fixture::For6d();
  EstimatorModel model(f.ctx.get());
  plan::RelSet mk_k = plan::RelSet::Single(1).With(2);  // k=1, mk=2
  double est = model.Cardinality(mk_k);
  double truth = f.oracle->True(mk_k);
  // The Q-error grows with keyword-table size (est = 8 * |mk| / ndv(k));
  // at the test database's small scale a factor of >5 already shows the
  // trap (the benchmark scale sees two orders of magnitude).
  EXPECT_GT(truth / est, 5.0)
      << "est " << est << " truth " << truth
      << " — the uniformity assumption must underestimate hot keywords";
}

TEST(PerfectNModelTest, PerfectZeroEqualsEstimator) {
  Fixture f = Fixture::For6d();
  EstimatorModel est(f.ctx.get());
  PerfectNModel p0(f.ctx.get(), f.oracle.get(), 0);
  for (plan::RelSet set : f.ctx->graph().ConnectedSubsets()) {
    EXPECT_DOUBLE_EQ(p0.Cardinality(set), est.Cardinality(set))
        << set.ToString();
  }
}

TEST(PerfectNModelTest, PerfectFullMatchesOracleEverywhere) {
  Fixture f = Fixture::For6d();
  PerfectNModel model(f.ctx.get(), f.oracle.get(), 5);
  for (plan::RelSet set : f.ctx->graph().ConnectedSubsets()) {
    EXPECT_DOUBLE_EQ(model.Cardinality(set),
                     std::max(1.0, f.oracle->True(set)))
        << set.ToString();
  }
}

TEST(PerfectNModelTest, OracleOnlyBelowHorizon) {
  Fixture f = Fixture::For6d();
  PerfectNModel model(f.ctx.get(), f.oracle.get(), 2);
  // Sizes <= 2: exact.
  for (plan::RelSet set : f.ctx->graph().ConnectedSubsets()) {
    if (set.count() > 2) continue;
    EXPECT_DOUBLE_EQ(model.Cardinality(set),
                     std::max(1.0, f.oracle->True(set)));
  }
  // The full join estimate differs from the truth (extrapolation error).
  plan::RelSet all = f.query->AllRelations();
  EXPECT_NE(model.Cardinality(all), std::max(1.0, f.oracle->True(all)));
}

TEST(PerfectNModelTest, HigherHorizonImprovesTopJoinOnAverage) {
  // The paper (Sec. III): estimates are "on average better" with a higher
  // horizon — not pointwise monotone (partial corrections can overshoot,
  // which is also the Fig. 5 phenomenon). We assert the endpoints and the
  // average trend.
  Fixture f = Fixture::For6d();
  double truth = std::max(1.0, f.oracle->True(f.query->AllRelations()));
  auto qerror = [&](int n) {
    PerfectNModel model(f.ctx.get(), f.oracle.get(), n);
    double est = model.Cardinality(f.query->AllRelations());
    return std::max(est / truth, truth / est);
  };
  double q0 = qerror(0);
  double q4 = qerror(4);
  double q5 = qerror(5);
  EXPECT_DOUBLE_EQ(q5, 1.0);  // n = all relations -> exact
  EXPECT_LT(q4, q0);          // near-full horizon beats the baseline
}

TEST(InjectedModelTest, OverrideWinsAndPropagates) {
  Fixture f = Fixture::For6d();
  InjectedModel model(f.ctx.get());
  plan::RelSet mk_k = plan::RelSet::Single(1).With(2);
  double before_leaf = model.Cardinality(mk_k);
  double before_top = model.Cardinality(f.query->AllRelations());

  double truth = f.oracle->True(mk_k);
  model.Inject(mk_k, truth);
  EXPECT_DOUBLE_EQ(model.Cardinality(mk_k), truth);
  // The corrected sub-join must shift the full-query estimate upward.
  double after_top = model.Cardinality(f.query->AllRelations());
  EXPECT_GT(after_top, before_top);
  EXPECT_GT(truth, before_leaf);
}

TEST(InjectedModelTest, HasInjectionAndCount) {
  Fixture f = Fixture::For6d();
  InjectedModel model(f.ctx.get());
  plan::RelSet set(0b00011);
  EXPECT_FALSE(model.HasInjection(set));
  model.Inject(set, 123.0);
  EXPECT_TRUE(model.HasInjection(set));
  EXPECT_EQ(model.num_injected(), 1);
  model.Inject(set, 99.0);  // overwrite, not duplicate
  EXPECT_EQ(model.num_injected(), 1);
  EXPECT_DOUBLE_EQ(model.Cardinality(set), 99.0);
}

TEST(ModelTest, DisconnectedSubsetIsComponentProduct) {
  Fixture f = Fixture::For6d();
  EstimatorModel model(f.ctx.get());
  // keyword (1) and name (3) are disconnected.
  double k = model.Cardinality(plan::RelSet::Single(1));
  double n = model.Cardinality(plan::RelSet::Single(3));
  double both = model.Cardinality(plan::RelSet::Single(1).With(3));
  EXPECT_NEAR(both, k * n, 1e-6 * k * n);
}

}  // namespace
}  // namespace reopt::optimizer
