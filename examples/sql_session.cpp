// Drives the engine through its SQL front-end, reproducing the paper's
// Fig. 6 by hand: run the original 7-way query, then express the
// re-optimization rewrite as CREATE TEMP TABLE ... AS SELECT followed by
// the rewritten tail query, and compare results and simulated times.
//
//   $ ./build/examples/sql_session
#include <cstdio>
#include <string>

#include "common/sim_time.h"
#include "exec/executor.h"
#include "imdb/imdb.h"
#include "optimizer/planner.h"
#include "sql/parser.h"
#include "stats/analyze.h"

using namespace reopt;  // NOLINT: example code

namespace {

// Plans and executes one SQL statement; returns false on error.
bool RunSql(imdb::ImdbDatabase* db, const std::string& sql,
            exec::QueryResult* result) {
  auto parsed = sql::ParseStatement(sql, db->catalog);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return false;
  }
  auto ctx = optimizer::QueryContext::Bind(parsed->query.get(),
                                           &db->catalog, &db->stats);
  if (!ctx.ok()) {
    std::printf("bind error: %s\n", ctx.status().ToString().c_str());
    return false;
  }
  optimizer::EstimatorModel model(ctx.value().get());
  optimizer::CostParams params;
  optimizer::PlannerOptions popts;
  popts.add_aggregate = parsed->create_table_name.empty();
  optimizer::Planner planner(ctx.value().get(), &model, params, popts);
  auto planned = planner.Plan();
  if (!planned.ok()) {
    std::printf("plan error: %s\n", planned.status().ToString().c_str());
    return false;
  }
  plan::PlanNodePtr root = std::move(planned->root);
  if (!parsed->create_table_name.empty()) {
    // Wrap the join tree in a TempWrite materializing the select list.
    auto write = std::make_unique<plan::PlanNode>();
    write->op = plan::PlanOp::kTempWrite;
    write->rels = root->rels;
    write->temp_table_name = parsed->create_table_name;
    for (const plan::OutputExpr& out : parsed->query->outputs) {
      write->temp_columns.push_back(out.column);
    }
    write->left = std::move(root);
    root = std::move(write);
  }
  exec::Executor executor(&db->catalog, &db->stats, params);
  auto executed = executor.Execute(*parsed->query, root.get());
  if (!executed.ok()) {
    std::printf("exec error: %s\n", executed.status().ToString().c_str());
    return false;
  }
  *result = std::move(executed.value());
  std::printf("  -> %lld rows, exec %s\n",
              static_cast<long long>(result->raw_rows),
              common::FormatSimSeconds(
                  common::CostUnitsToSeconds(result->cost_units))
                  .c_str());
  return true;
}

}  // namespace

int main() {
  imdb::ImdbOptions options;
  options.scale = 0.25;
  auto db = imdb::BuildImdbDatabase(options);

  const std::string original = R"sql(
    SELECT MIN(n.name) AS of_person, MIN(t.title) AS biography_movie
    FROM cast_info AS ci, company_name AS cn, keyword AS k,
         movie_companies AS mc, movie_keyword AS mk, name AS n, title AS t
    WHERE k.keyword = 'character-name-in-title'
      AND n.name LIKE 'W%'
      AND n.id = ci.person_id AND ci.movie_id = t.id
      AND t.id = mk.movie_id AND mk.keyword_id = k.id
      AND t.id = mc.movie_id AND mc.company_id = cn.id;
  )sql";
  std::printf("original query (paper Fig. 6, left):\n");
  exec::QueryResult before;
  if (!RunSql(db.get(), original, &before)) return 1;
  double original_units = before.cost_units;

  std::printf("\nre-optimized form (paper Fig. 6, right):\n");
  const std::string create_temp = R"sql(
    CREATE TEMP TABLE temp1 AS
    SELECT mk.movie_id
    FROM keyword AS k, movie_keyword AS mk
    WHERE mk.keyword_id = k.id AND k.keyword = 'character-name-in-title';
  )sql";
  exec::QueryResult temp_result;
  if (!RunSql(db.get(), create_temp, &temp_result)) return 1;

  const std::string rewritten = R"sql(
    SELECT MIN(n.name) AS of_person, MIN(t.title) AS biography_movie
    FROM cast_info AS ci, company_name AS cn, movie_companies AS mc,
         name AS n, title AS t, temp1 AS tmp
    WHERE n.name LIKE 'W%'
      AND n.id = ci.person_id AND ci.movie_id = t.id
      AND t.id = tmp.mk_movie_id
      AND t.id = mc.movie_id AND mc.company_id = cn.id;
  )sql";
  exec::QueryResult after;
  if (!RunSql(db.get(), rewritten, &after)) return 1;

  if (before.aggregates != after.aggregates) {
    std::printf("RESULT MISMATCH between original and rewritten query!\n");
    return 1;
  }
  double rewritten_units = temp_result.cost_units + after.cost_units;
  std::printf("\nresults agree; execution: original %s vs temp+rewritten "
              "%s (%.2fx)\n",
              common::FormatSimSeconds(
                  common::CostUnitsToSeconds(original_units))
                  .c_str(),
              common::FormatSimSeconds(
                  common::CostUnitsToSeconds(rewritten_units))
                  .c_str(),
              original_units / rewritten_units);
  db->catalog.DropTempTables();
  return 0;
}
