// Drives the engine through its SQL front-end, reproducing the paper's
// Fig. 6 by hand: run the original 7-way query, then express the
// re-optimization rewrite as CREATE TEMP TABLE ... AS SELECT followed by
// the rewritten tail query, and compare results and simulated times.
//
// Every statement goes through sql::Engine — the same parse -> bind ->
// plan -> execute pipeline the multi-session service layer
// (src/service/sql_server.h) runs; this example is its single-session,
// single-statement-at-a-time form.
//
//   $ ./build/examples/sql_session
#include <cstdio>
#include <string>

#include "common/sim_time.h"
#include "imdb/imdb.h"
#include "sql/engine.h"

using namespace reopt;  // NOLINT: example code

namespace {

// Runs one SQL statement through the shared pipeline; false on error.
bool RunSql(sql::Engine* engine, const std::string& statement,
            sql::StatementOutcome* outcome) {
  auto executed = engine->Execute(statement);
  if (!executed.ok()) {
    std::printf("error: %s\n", executed.status().ToString().c_str());
    return false;
  }
  *outcome = std::move(executed.value());
  std::printf("  -> %lld rows, exec %s\n",
              static_cast<long long>(outcome->raw_rows),
              common::FormatSimSeconds(
                  common::CostUnitsToSeconds(outcome->exec_cost_units))
                  .c_str());
  return true;
}

}  // namespace

int main() {
  imdb::ImdbOptions options;
  options.scale = 0.25;
  auto db = imdb::BuildImdbDatabase(options);
  sql::Engine engine(&db->catalog, &db->stats);

  const std::string original = R"sql(
    SELECT MIN(n.name) AS of_person, MIN(t.title) AS biography_movie
    FROM cast_info AS ci, company_name AS cn, keyword AS k,
         movie_companies AS mc, movie_keyword AS mk, name AS n, title AS t
    WHERE k.keyword = 'character-name-in-title'
      AND n.name LIKE 'W%'
      AND n.id = ci.person_id AND ci.movie_id = t.id
      AND t.id = mk.movie_id AND mk.keyword_id = k.id
      AND t.id = mc.movie_id AND mc.company_id = cn.id;
  )sql";
  std::printf("original query (paper Fig. 6, left):\n");
  sql::StatementOutcome before;
  if (!RunSql(&engine, original, &before)) return 1;
  double original_units = before.exec_cost_units;

  std::printf("\nre-optimized form (paper Fig. 6, right):\n");
  const std::string create_temp = R"sql(
    CREATE TEMP TABLE temp1 AS
    SELECT mk.movie_id
    FROM keyword AS k, movie_keyword AS mk
    WHERE mk.keyword_id = k.id AND k.keyword = 'character-name-in-title';
  )sql";
  sql::StatementOutcome temp_result;
  if (!RunSql(&engine, create_temp, &temp_result)) return 1;

  const std::string rewritten = R"sql(
    SELECT MIN(n.name) AS of_person, MIN(t.title) AS biography_movie
    FROM cast_info AS ci, company_name AS cn, movie_companies AS mc,
         name AS n, title AS t, temp1 AS tmp
    WHERE n.name LIKE 'W%'
      AND n.id = ci.person_id AND ci.movie_id = t.id
      AND t.id = tmp.mk_movie_id
      AND t.id = mc.movie_id AND mc.company_id = cn.id;
  )sql";
  sql::StatementOutcome after;
  if (!RunSql(&engine, rewritten, &after)) return 1;

  if (before.aggregates != after.aggregates) {
    std::printf("RESULT MISMATCH between original and rewritten query!\n");
    return 1;
  }
  double rewritten_units =
      temp_result.exec_cost_units + after.exec_cost_units;
  std::printf("\nresults agree; execution: original %s vs temp+rewritten "
              "%s (%.2fx)\n",
              common::FormatSimSeconds(
                  common::CostUnitsToSeconds(original_units))
                  .c_str(),
              common::FormatSimSeconds(
                  common::CostUnitsToSeconds(rewritten_units))
                  .c_str(),
              original_units / rewritten_units);
  db->catalog.DropTempTables();
  return 0;
}
