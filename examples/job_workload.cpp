// Runs the full 113-query JOB-like workload under the three headline
// configurations (default estimation, re-optimization at threshold 32,
// perfect estimates) and prints the workload summary plus the slowest
// queries — a miniature of the paper's whole evaluation.
//
//   $ ./build/examples/job_workload            # scale 0.25
//   $ REOPT_SCALE=0.5 ./build/examples/job_workload
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "imdb/imdb.h"
#include "workload/job_like.h"
#include "workload/runner.h"

using namespace reopt;  // NOLINT: example code

int main() {
  double scale = 0.25;
  if (const char* env = std::getenv("REOPT_SCALE")) {
    scale = std::atof(env);
  }
  imdb::ImdbOptions options;
  options.scale = scale;
  std::printf("generating database (scale %.2f) and 113-query workload...\n",
              scale);
  auto db = imdb::BuildImdbDatabase(options);
  auto workload = workload::BuildJobLikeWorkload(db->catalog);
  workload::WorkloadRunner runner(db.get());

  reoptimizer::ReoptOptions reopt_on;
  reopt_on.enabled = true;
  reopt_on.qerror_threshold = 32.0;

  auto pg = runner.RunAll(*workload, reoptimizer::ModelSpec::Estimator(), {});
  auto re = runner.RunAll(*workload, reoptimizer::ModelSpec::Estimator(),
                          reopt_on);
  auto perfect = runner.RunAll(*workload,
                               reoptimizer::ModelSpec::PerfectN(17), {});
  if (!pg.ok() || !re.ok() || !perfect.ok()) {
    std::printf("workload error\n");
    return 1;
  }

  std::printf("\n%-18s %10s %10s %10s\n", "configuration", "plan (s)",
              "exec (s)", "total (s)");
  auto row = [](const char* name, const workload::WorkloadRunResult& r) {
    std::printf("%-18s %10.2f %10.2f %10.2f\n", name, r.TotalPlanSeconds(),
                r.TotalExecSeconds(),
                r.TotalPlanSeconds() + r.TotalExecSeconds());
  };
  row("PostgreSQL-style", *pg);
  row("re-optimized (32)", *re);
  row("perfect", *perfect);

  double benefit_perfect =
      pg->TotalExecSeconds() - perfect->TotalExecSeconds();
  double benefit_reopt = pg->TotalExecSeconds() - re->TotalExecSeconds();
  std::printf("\nre-optimization captured %.0f%% of the benefit of perfect "
              "estimates\n",
              100.0 * benefit_reopt / benefit_perfect);

  // The 10 slowest queries under default estimation, with comparisons.
  std::vector<size_t> order(pg->records.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pg->records[a].exec_seconds > pg->records[b].exec_seconds;
  });
  std::printf("\nslowest 10 queries (exec seconds):\n");
  std::printf("%-10s %8s %10s %10s %8s\n", "query", "tables", "default",
              "re-opt", "perfect");
  for (size_t i = 0; i < 10 && i < order.size(); ++i) {
    const auto& p = pg->records[order[i]];
    std::printf("%-10s %8d %10.3f %10.3f %8.3f\n", p.name.c_str(),
                p.num_tables, p.exec_seconds,
                re->records[order[i]].exec_seconds,
                perfect->records[order[i]].exec_seconds);
  }
  return 0;
}
