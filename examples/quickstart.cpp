// Quickstart: build the synthetic IMDB database, run the paper's query 6d
// analogue with the default estimator, then with re-optimization, then with
// perfect estimates, and compare plans and simulated times.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "common/sim_time.h"
#include "exec/executor.h"
#include "imdb/imdb.h"
#include "optimizer/planner.h"
#include "reopt/query_runner.h"
#include "workload/job_like.h"

using namespace reopt;  // NOLINT: example code

int main() {
  // 1. Build and ANALYZE the database (deterministic).
  imdb::ImdbOptions options;
  options.scale = 0.25;  // quickstart-sized
  std::printf("Generating synthetic IMDB database (scale %.2f)...\n",
              options.scale);
  auto db = imdb::BuildImdbDatabase(options);
  for (const auto& name : db->catalog.TableNames()) {
    std::printf("  %-18s %8lld rows\n", name.c_str(),
                static_cast<long long>(db->catalog.FindTable(name)->num_rows()));
  }

  // 2. The paper's query 6d analogue: skewed keywords defeat the
  //    uniformity assumption two joins away from the filter.
  auto query = workload::MakeQuery6d(db->catalog);
  std::printf("\nQuery %s:\n%s\n", query->name.c_str(),
              query->ToString().c_str());

  auto session_or =
      reoptimizer::QuerySession::Create(query.get(), &db->catalog, &db->stats);
  if (!session_or.ok()) {
    std::printf("bind error: %s\n", session_or.status().ToString().c_str());
    return 1;
  }
  reoptimizer::QuerySession* session = session_or.value().get();

  optimizer::CostParams params;
  reoptimizer::QueryRunner runner(&db->catalog, &db->stats, params);

  // 3. Default PostgreSQL-style estimation, no re-optimization.
  auto pg = runner.Run(session, reoptimizer::ModelSpec::Estimator(), {});
  // 4. Same estimator, with mid-query re-optimization (threshold 32).
  reoptimizer::ReoptOptions reopt_on;
  reopt_on.enabled = true;
  reopt_on.qerror_threshold = 32.0;
  auto re = runner.Run(session, reoptimizer::ModelSpec::Estimator(), reopt_on);
  // 5. Perfect cardinalities (the unachievable ideal).
  auto perfect = runner.Run(
      session, reoptimizer::ModelSpec::PerfectN(query->num_relations()), {});

  if (!pg.ok() || !re.ok() || !perfect.ok()) {
    std::printf("run error\n");
    return 1;
  }

  std::printf("%-22s %12s %12s %8s\n", "configuration", "plan", "execute",
              "temps");
  auto row = [](const char* name, const reoptimizer::RunResult& r) {
    std::printf("%-22s %12s %12s %8d\n", name,
                common::FormatSimSeconds(r.plan_seconds()).c_str(),
                common::FormatSimSeconds(r.exec_seconds()).c_str(),
                r.num_materializations);
  };
  row("PostgreSQL-style", *pg);
  row("re-optimized", *re);
  row("perfect estimates", *perfect);

  std::printf("\nResult (MIN aggregates):");
  for (size_t i = 0; i < pg->aggregates.size(); ++i) {
    std::printf(" %s=%s", query->outputs[i].label.c_str(),
                pg->aggregates[i].ToString().c_str());
  }
  std::printf("\n");

  // Sanity: all three configurations must return identical results.
  for (size_t i = 0; i < pg->aggregates.size(); ++i) {
    if (pg->aggregates[i] != re->aggregates[i] ||
        pg->aggregates[i] != perfect->aggregates[i]) {
      std::printf("MISMATCH in output %zu!\n", i);
      return 1;
    }
  }
  std::printf("All configurations agree. Re-optimization sped execution "
              "up by %.2fx over the default plan.\n",
              pg->exec_seconds() / re->exec_seconds());
  return 0;
}
