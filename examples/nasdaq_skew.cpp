// The paper's Tables IV/V example: a stock-trading database where a few
// symbols carry most of the volume. The uniformity assumption makes the
// optimizer underestimate "all trades of a hot symbol" by orders of
// magnitude; re-optimization detects the blown estimate at runtime and
// fixes the remainder of a larger query.
//
//   $ ./build/examples/nasdaq_skew
#include <cstdio>

#include "common/sim_time.h"
#include "imdb/imdb.h"
#include "optimizer/cardinality_model.h"
#include "optimizer/true_cardinality.h"
#include "reopt/query_runner.h"
#include "workload/query_builder.h"

using namespace reopt;  // NOLINT: example code

int main() {
  imdb::NasdaqOptions options;
  auto db = imdb::BuildNasdaqDatabase(options);
  std::printf("company: %lld rows, trades: %lld rows (Zipf theta %.2f)\n",
              static_cast<long long>(
                  db->catalog.FindTable("company")->num_rows()),
              static_cast<long long>(
                  db->catalog.FindTable("trades")->num_rows()),
              options.zipf_theta);

  // The hottest symbol (rank 1 in the Zipf distribution).
  std::string hot =
      db->catalog.FindTable("company")->column(1).GetString(0);

  // 1. The 2-way query from the paper: estimate vs truth.
  {
    workload::QueryBuilder qb(&db->catalog, "hot_symbol");
    int c = qb.AddRelation("company", "company");
    int t = qb.AddRelation("trades", "trades");
    qb.Join(c, "id", t, "company_id")
        .FilterEq(c, "symbol", common::Value::Str(hot))
        .OutputMin(t, "shares", "min_shares");
    auto query = qb.Build();
    auto ctx = optimizer::QueryContext::Bind(query.get(), &db->catalog,
                                             &db->stats);
    optimizer::EstimatorModel model(ctx.value().get());
    optimizer::TrueCardinalityOracle oracle(ctx.value().get());
    double est = model.Cardinality(plan::RelSet::FirstN(2));
    double truth = oracle.True(plan::RelSet::FirstN(2));
    std::printf(
        "\nSELECT * FROM company, trades\n"
        "WHERE company.symbol = '%s' AND company.id = trades.company_id;\n"
        "  estimated: %8.0f rows\n  actual:    %8.0f rows (%.0fx "
        "underestimate)\n",
        hot.c_str(), est, truth, truth / est);
  }

  // 2. A 3-way variant where the blown estimate derails the plan, and
  //    re-optimization rescues it: trades of the hot symbol paired with
  //    that company's block trades (shares > 9998).
  {
    workload::QueryBuilder qb(&db->catalog, "hot_pairs");
    int c = qb.AddRelation("company", "c");
    int t1 = qb.AddRelation("trades", "t1");
    int t2 = qb.AddRelation("trades", "t2");
    qb.Join(c, "id", t1, "company_id")
        .Join(t1, "company_id", t2, "company_id")
        .FilterEq(c, "symbol", common::Value::Str(hot))
        .FilterCompare(t2, "shares", plan::CompareOp::kGt,
                       common::Value::Int(9998))
        .OutputMin(t1, "shares", "min_shares")
        .OutputMin(t2, "id", "min_trade");
    auto query = qb.Build();
    auto session =
        reoptimizer::QuerySession::Create(query.get(), &db->catalog,
                                          &db->stats);
    if (!session.ok()) {
      std::printf("bind error: %s\n", session.status().ToString().c_str());
      return 1;
    }
    optimizer::CostParams params;
    reoptimizer::QueryRunner runner(&db->catalog, &db->stats, params);
    auto plain = runner.Run(session.value().get(),
                            reoptimizer::ModelSpec::Estimator(), {});
    reoptimizer::ReoptOptions ro;
    ro.enabled = true;
    auto re = runner.Run(session.value().get(),
                         reoptimizer::ModelSpec::Estimator(), ro);
    if (!plain.ok() || !re.ok()) {
      std::printf("run error\n");
      return 1;
    }
    std::printf("\n3-way hot-pair query (%lld result rows):\n",
                static_cast<long long>(plain->raw_rows));
    std::printf("  without re-optimization: exec %s\n",
                common::FormatSimSeconds(plain->exec_seconds()).c_str());
    std::printf("  with re-optimization:    exec %s (%d temp table(s))\n",
                common::FormatSimSeconds(re->exec_seconds()).c_str(),
                re->num_materializations);
    for (const auto& round : re->rounds) {
      if (round.materialized) {
        std::printf("    materialized %s: est %.0f vs actual %.0f "
                    "(Q-error %.0f)\n",
                    round.subset.ToString().c_str(), round.est_rows,
                    round.true_rows, round.qerror);
      }
    }
    if (plain->aggregates != re->aggregates) {
      std::printf("RESULT MISMATCH\n");
      return 1;
    }
  }
  return 0;
}
